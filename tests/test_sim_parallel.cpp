// Sharded parallel DES: the ShardedSimulation engine's determinism contract
// (free-run / windowed / lockstep modes, cross-shard FIFO and exactly-once
// delivery, thread-count independence), the conservative auto-partitioner's
// safety gates, and the end-to-end byte-identity of sharded scenario
// artifacts against the sequential run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "exp/artifacts.hpp"
#include "exp/grid.hpp"
#include "exp/partition.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

using namespace zipper;
using namespace zipper::sim;

namespace {

Task log_delays(Simulation& sim, std::vector<std::pair<Time, int>>& log,
                int id, int count, Time stride) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(stride);
    log.emplace_back(sim.now(), id);
  }
}

}  // namespace

// ------------------------------------------------------- engine: free-run --

// A fully decomposed partition must produce, per shard, exactly the event
// sequence the same workload produces on a private sequential Simulation —
// at every thread count.
TEST(ShardedSim, RunFreeMatchesSequentialPerShard) {
  auto reference = [](int id) {
    Simulation sim;
    std::vector<std::pair<Time, int>> log;
    sim.spawn(log_delays(sim, log, id, 50, 7 + id));
    sim.spawn(log_delays(sim, log, 100 + id, 30, 11));
    sim.run();
    return std::tuple{log, sim.events_dispatched(), sim.now()};
  };

  for (int threads : {1, 2, 4}) {
    ShardedSimulation driver(3, ShardedConfig{threads, 0});
    std::vector<std::vector<std::pair<Time, int>>> logs(3);
    for (int s = 0; s < 3; ++s) {
      auto& sh = driver.shard(s);
      sh.spawn(log_delays(sh, logs[static_cast<std::size_t>(s)], s, 50, 7 + s));
      sh.spawn(log_delays(sh, logs[static_cast<std::size_t>(s)], 100 + s, 30, 11));
    }
    const auto stats = driver.run_free();
    EXPECT_EQ(stats.windows, 0u);
    EXPECT_EQ(stats.messages, 0u);
    std::uint64_t total_events = 0;
    Time max_end = 0;
    for (int s = 0; s < 3; ++s) {
      const auto [ref_log, ref_events, ref_end] = reference(s);
      EXPECT_EQ(logs[static_cast<std::size_t>(s)], ref_log) << "shard " << s;
      total_events += ref_events;
      max_end = std::max(max_end, ref_end);
    }
    EXPECT_EQ(stats.events, total_events);
    EXPECT_EQ(stats.end_time, max_end);
  }
}

// ------------------------------------------------------- engine: windowed --

namespace {

// A ring of shards passing a token: shard s receives at t, forwards to
// (s+1)%S at t + L. Returns the (shard, time) delivery log and stats.
std::pair<std::vector<std::pair<int, Time>>, ShardedStats> run_token_ring(
    int S, int threads, Time L, int hops) {
  ShardedSimulation driver(S, ShardedConfig{threads, L});
  auto log = std::make_shared<std::vector<std::pair<int, Time>>>();
  auto mu = std::make_shared<std::mutex>();

  // The forwarding closure posts from the shard it executes in, so each
  // hop respects the conservative contract t >= now() + L.
  struct Forward {
    ShardedSimulation* d;
    std::shared_ptr<std::vector<std::pair<int, Time>>> log;
    std::shared_ptr<std::mutex> mu;
    int S;
    int left;
    void hop(int at, Time t) const {
      {
        std::lock_guard<std::mutex> lk(*mu);
        log->emplace_back(at, t);
      }
      if (left <= 0) return;
      Forward next = *this;
      next.left = left - 1;
      const int to = (at + 1) % S;
      d->post(at, to, t + d->lookahead(),
              [next, to, t2 = t + d->lookahead()] { next.hop(to, t2); });
    }
  };
  const Forward f{&driver, log, mu, S, hops};
  // Seed the ring from shard 0's context before run() starts.
  driver.post(0, 0, L, [f, L] { f.hop(0, L); });

  const auto stats = driver.run();
  return {*log, stats};
}

}  // namespace

// Windowed execution must be a pure function of the partition: identical
// delivery logs and stats at 1, 2, 3, and 4 worker threads.
TEST(ShardedSim, WindowedIdenticalAcrossThreadCounts) {
  const auto [ref_log, ref_stats] = run_token_ring(4, 1, 10, 40);
  ASSERT_EQ(ref_log.size(), 41u);
  // The token visits shards round-robin at L, 2L, 3L, ...
  for (std::size_t i = 0; i < ref_log.size(); ++i) {
    EXPECT_EQ(ref_log[i].first, static_cast<int>(i % 4));
    EXPECT_EQ(ref_log[i].second, static_cast<Time>(10 * (i + 1)));
  }
  EXPECT_EQ(ref_stats.messages, 41u);
  for (int threads : {2, 3, 4}) {
    const auto [log, stats] = run_token_ring(4, threads, 10, 40);
    EXPECT_EQ(log, ref_log) << "threads=" << threads;
    EXPECT_EQ(stats.windows, ref_stats.windows);
    EXPECT_EQ(stats.messages, ref_stats.messages);
    EXPECT_EQ(stats.events, ref_stats.events);
    EXPECT_EQ(stats.end_time, ref_stats.end_time);
  }
}

// ------------------------------------------------------- engine: lockstep --

// Zero lookahead degenerates to same-timestamp sub-rounds: a chain of
// same-time cross-shard messages must all land at one timestamp, in
// deterministic order, and the run must still terminate.
TEST(ShardedSim, LockstepZeroLookaheadSameTimeChain) {
  for (int threads : {1, 4}) {
    ShardedSimulation driver(3, ShardedConfig{threads, 0});
    std::vector<std::pair<int, Time>> log;
    std::mutex mu;
    const Time t0 = 5;
    // 0 -> 1 -> 2, every hop at the same simulated instant.
    driver.post(0, 0, t0, [&, t0] {
      {
        std::lock_guard<std::mutex> lk(mu);
        log.emplace_back(0, t0);
      }
      driver.post(0, 1, t0, [&, t0] {
        {
          std::lock_guard<std::mutex> lk(mu);
          log.emplace_back(1, t0);
        }
        driver.post(1, 2, t0, [&, t0] {
          std::lock_guard<std::mutex> lk(mu);
          log.emplace_back(2, t0);
        });
      });
    });
    const auto stats = driver.run();
    ASSERT_EQ(log.size(), 3u) << "threads=" << threads;
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(log[static_cast<std::size_t>(s)],
                (std::pair{s, t0}));
    }
    EXPECT_EQ(stats.messages, 3u);
    EXPECT_EQ(stats.end_time, t0);
    // One barrier round per same-time hop, at minimum.
    EXPECT_GE(stats.windows, 3u);
  }
}

// A single-shard ShardedSimulation is just a Simulation with barrier
// bookkeeping: events, end time, and self-posts must match the plain run.
TEST(ShardedSim, SingleShardDegenerateMatchesPlainSimulation) {
  Simulation ref;
  std::vector<std::pair<Time, int>> ref_log;
  ref.spawn(log_delays(ref, ref_log, 0, 20, 13));
  ref.run();

  ShardedSimulation driver(1, ShardedConfig{4, 50});
  std::vector<std::pair<Time, int>> log;
  driver.shard(0).spawn(log_delays(driver.shard(0), log, 0, 20, 13));
  bool self_post_ran = false;
  driver.post(0, 0, 50, [&] { self_post_ran = true; });
  const auto stats = driver.run();
  EXPECT_EQ(log, ref_log);
  EXPECT_TRUE(self_post_ran);
  // The shard clock rests somewhere inside the final lookahead window past
  // the last event (run_until parks at window_end - 1).
  const Time last_event = std::max<Time>(ref.now(), 50);
  EXPECT_GE(stats.end_time, last_event);
  EXPECT_LT(stats.end_time, last_event + 50);
  EXPECT_EQ(stats.messages, 1u);
}

// ------------------------------------- engine: randomized FIFO/exactly-once --

namespace {

struct Delivery {
  int src, dst, seq;
  Time t;
  bool operator==(const Delivery&) const = default;
};

std::vector<Delivery> run_random_storm(int S, int threads, Time L,
                                       std::uint64_t seed) {
  ShardedSimulation driver(S, ShardedConfig{threads, L});
  auto log = std::make_shared<std::vector<Delivery>>();
  auto mu = std::make_shared<std::mutex>();

  // Per-shard deterministic traffic: seeded by (seed, shard), independent of
  // thread count. Send times are strictly increasing per origin, so per
  // (src, dst) delivery must be FIFO.
  for (int s = 0; s < S; ++s) {
    auto& sh = driver.shard(s);
    sh.spawn([](Simulation& sim, ShardedSimulation& d, int src, int S,
                std::uint64_t sd, std::shared_ptr<std::vector<Delivery>> lg,
                std::shared_ptr<std::mutex> m) -> Task {
      std::mt19937_64 rng(sd);
      std::uniform_int_distribution<Time> jitter(1, 5);
      std::uniform_int_distribution<int> pick(0, S - 2);
      std::vector<int> seq(static_cast<std::size_t>(S), 0);
      for (int i = 0; i < 64; ++i) {
        co_await sim.delay(jitter(rng));
        int dst = pick(rng);
        if (dst >= src) ++dst;  // any shard but ourselves
        const int k = seq[static_cast<std::size_t>(dst)]++;
        const Time t = sim.now() + d.lookahead();
        d.post(src, dst, t, [lg, m, src, dst, k, t] {
          std::lock_guard<std::mutex> lk(*m);
          lg->push_back(Delivery{src, dst, k, t});
        });
      }
    }(sh, driver, s, S, seed * 1000003u + static_cast<std::uint64_t>(s), log,
      mu));
  }
  const auto stats = driver.run();
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(S) * 64u);

  // Exactly-once: every (src, dst, seq) triple appears exactly one time.
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& dv : *log) {
    EXPECT_TRUE(seen.emplace(dv.src, dv.dst, dv.seq).second)
        << "duplicate delivery src=" << dv.src << " dst=" << dv.dst
        << " seq=" << dv.seq;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(S) * 64u);

  // FIFO per (src, dst): delivery timestamps must be non-decreasing in seq.
  std::map<std::pair<int, int>, std::pair<int, Time>> last;
  std::vector<Delivery> sorted = *log;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Delivery& a, const Delivery& b) {
                     return std::tie(a.src, a.dst, a.seq) <
                            std::tie(b.src, b.dst, b.seq);
                   });
  for (const auto& dv : sorted) {
    auto it = last.find({dv.src, dv.dst});
    if (it != last.end()) {
      EXPECT_EQ(dv.seq, it->second.first + 1);
      EXPECT_GT(dv.t, it->second.second);
    }
    last[{dv.src, dv.dst}] = {dv.seq, dv.t};
  }
  return sorted;
}

}  // namespace

TEST(ShardedSim, RandomTrafficFifoExactlyOnceAndThreadInvariant) {
  for (std::uint64_t seed : {1u, 42u, 1805u}) {
    const auto ref = run_random_storm(4, 1, 8, seed);
    const auto par = run_random_storm(4, 4, 8, seed);
    EXPECT_EQ(ref, par) << "seed=" << seed;
  }
}

// --------------------------------------------------------- auto-partitioner --

namespace {

// The scaling_xl shape: the decomposable CFD spec (no spill, no halo ring).
exp::ScenarioSpec shardable_spec() {
  exp::ScenarioSpec s;
  s.cluster = "stampede2";
  s.workload = exp::Workload::kCfdStampede2;
  s.steps = 2;
  s.producers = 544;   // 8 KNL hosts
  s.consumers = 272;   // 4 KNL hosts
  s.method = transports::Method::kZipper;
  s.zipper.enable_steal = false;
  s.halo_neighbors = 0;
  s.label = "parallel/base";
  return s;
}

}  // namespace

TEST(PlanShards, ShardsTheDecomposableSpec) {
  const auto spec = shardable_spec();
  const auto plan = exp::plan_shards(spec, 4);
  ASSERT_TRUE(plan.sharded()) << plan.fallback_reason;
  EXPECT_GE(plan.num_shards, 2);
  EXPECT_LE(plan.threads, 4);
  EXPECT_EQ(plan.lookahead,
            exp::shard_lookahead(exp::make_cluster_spec(spec)));
  EXPECT_GT(plan.lookahead, 0);

  // Groups tile [0,P) x [0,Q) contiguously and rank_to_shard agrees.
  const int P = spec.producers, Q = spec.effective_consumers();
  ASSERT_EQ(plan.rank_to_shard.size(), static_cast<std::size_t>(P + Q));
  int p = 0, c = 0;
  for (std::size_t s = 0; s < plan.groups.size(); ++s) {
    const auto& g = plan.groups[s];
    EXPECT_EQ(g.p0, p);
    EXPECT_EQ(g.c0, c);
    EXPECT_GT(g.p1, g.p0);
    EXPECT_GT(g.c1, g.c0);
    for (int i = g.p0; i < g.p1; ++i)
      EXPECT_EQ(plan.rank_to_shard[static_cast<std::size_t>(i)],
                static_cast<int>(s));
    for (int i = g.c0; i < g.c1; ++i)
      EXPECT_EQ(plan.rank_to_shard[static_cast<std::size_t>(P + i)],
                static_cast<int>(s));
    p = g.p1;
    c = g.c1;
  }
  EXPECT_EQ(p, P);
  EXPECT_EQ(c, Q);
}

// Every safety gate must force the sequential fallback with a stated reason.
TEST(PlanShards, GatesFallBackToSequential) {
  const auto base = shardable_spec();
  const auto expect_fallback = [](exp::ScenarioSpec s, const char* what) {
    const auto plan = exp::plan_shards(s, 4);
    EXPECT_FALSE(plan.sharded()) << what;
    EXPECT_EQ(plan.num_shards, 1) << what;
    EXPECT_FALSE(plan.fallback_reason.empty()) << what;
  };

  EXPECT_FALSE(exp::plan_shards(base, 1).sharded())
      << "threads=1 must stay sequential";

  auto s = base;
  s.method = std::nullopt;
  expect_fallback(s, "sim-only");

  s = base;
  s.method = transports::Method::kDecaf;
  expect_fallback(s, "non-zipper transport");

  s = base;
  s.zipper.enable_steal = true;  // the default: spill may touch the PFS
  expect_fallback(s, "writer spill enabled");

  s = base;
  s.zipper.sched.consumer_steal = true;
  expect_fallback(s, "consumer stealing");

  s = base;
  s.zipper.preserve = true;
  expect_fallback(s, "preserve mode");

  s = base;
  s.chaos.straggler = {1, 4.0};
  expect_fallback(s, "chaos injection");

  s = base;
  s.record_traces = true;
  expect_fallback(s, "trace recording");

  s = base;
  s.adaptive_control = true;
  expect_fallback(s, "adaptive control");

  s = base;
  s.background_load_intensity = 0.4;
  expect_fallback(s, "background PFS load");

  s = base;
  s.halo_neighbors = 2;
  expect_fallback(s, "halo ring couples producers");

  s = base;
  s.producers = 136;
  s.consumers = 272;
  expect_fallback(s, "P < Q fan-out routing");

  s = base;
  s.consumers = 68;  // one consumer host: no host-aligned 2-way cut exists
  expect_fallback(s, "no aligned partition");
}

// The oversized thread count must clamp to the shard count, never exceed it.
TEST(PlanShards, ThreadsClampToShards) {
  const auto plan = exp::plan_shards(shardable_spec(), 64);
  ASSERT_TRUE(plan.sharded()) << plan.fallback_reason;
  EXPECT_LE(plan.threads, plan.num_shards);
}

// -------------------------------------------------- scenario byte-identity --

// The headline contract: a sharded scenario run writes byte-identical CSV
// and JSON artifacts to the sequential run, at any --sim-threads value.
TEST(ShardedScenario, ArtifactsByteIdenticalAcrossSimThreads) {
  auto spec = shardable_spec();
  const auto seq = exp::run_scenario(spec);
  ASSERT_FALSE(seq.crashed) << seq.note;
  const auto seq_csv = exp::to_csv({seq});
  const auto seq_json = exp::to_json({seq});
  for (int threads : {2, 4, 8}) {
    auto sharded = spec;
    sharded.sim_threads = threads;
    const auto r = exp::run_scenario(sharded);
    EXPECT_EQ(exp::to_csv({r}), seq_csv) << "sim_threads=" << threads;
    EXPECT_EQ(exp::to_json({r}), seq_json) << "sim_threads=" << threads;
  }
}

// Registered figures must be --sim-threads-invariant too: specs the
// partitioner can shard run sharded, everything else falls back — either
// way the artifact bytes cannot change.
TEST(ShardedScenario, RegisteredFigureSpecsUnchangedBySimThreads) {
  for (const char* name : {"scaling_xl", "fig12"}) {
    const auto* fig = exp::find_figure(name);
    ASSERT_NE(fig, nullptr) << name;
    auto specs = fig->scenarios(false);
    ASSERT_FALSE(specs.empty());
    auto spec = specs.front();  // one representative point per figure
    const auto seq = exp::run_scenario(spec);
    auto sharded = spec;
    sharded.sim_threads = 8;
    const auto r = exp::run_scenario(sharded);
    EXPECT_EQ(exp::to_csv({r}), exp::to_csv({seq})) << name;
    EXPECT_EQ(exp::to_json({r}), exp::to_json({seq})) << name;
  }
}

// Runtime hooks must fire exactly once per analyzed block with *global*
// consumer and producer indices, whether the run is sequential or sharded
// (where they fire on shard worker threads under the caller's lock).
TEST(ShardedScenario, HooksFireExactlyOnceWithGlobalIndices) {
  using Seen = std::vector<std::tuple<int, int, int, int, std::uint64_t>>;
  const auto collect = [](int sim_threads) {
    auto spec = shardable_spec();
    spec.sim_threads = sim_threads;
    auto seen = std::make_shared<Seen>();
    auto mu = std::make_shared<std::mutex>();
    spec.zipper.on_analyzed = [seen, mu](int c, const core::BlockHeader& h) {
      std::lock_guard<std::mutex> lk(*mu);
      seen->emplace_back(c, h.id.step, h.id.producer, h.id.index, h.bytes);
    };
    const auto r = exp::run_scenario(spec);
    EXPECT_FALSE(r.crashed) << r.note;
    std::sort(seen->begin(), seen->end());
    return *seen;
  };

  const auto seq = collect(1);
  ASSERT_FALSE(seq.empty());
  const auto par = collect(4);
  EXPECT_EQ(seq, par);

  const auto spec = shardable_spec();
  for (const auto& [c, step, producer, index, bytes] : par) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, spec.effective_consumers());
    EXPECT_GE(producer, 0);
    EXPECT_LT(producer, spec.producers);
    EXPECT_GT(bytes, 0u);
    (void)step;
    (void)index;
  }
}

// shard_* diagnostic columns are strictly opt-in, and report a real
// multi-shard execution when the partitioner sharded the run.
TEST(ShardedScenario, ShardMetricsColumnsOptIn) {
  auto spec = shardable_spec();
  spec.sim_threads = 4;
  const auto quiet = exp::run_scenario(spec);
  for (const auto& [k, v] : quiet.metrics) {
    EXPECT_NE(k.rfind("shard_", 0), 0u) << k;
  }

  spec.shard_metrics = true;
  const auto loud = exp::run_scenario(spec);
  EXPECT_GE(loud.get("shard_count"), 2.0);
  EXPECT_GE(loud.get("shard_threads"), 2.0);
  EXPECT_GT(loud.get("shard_lookahead_ns"), 0.0);
  EXPECT_GT(loud.get("shard_events"), 0.0);
  EXPECT_EQ(loud.get("shard_windows"), 0.0);   // free-run: no barriers
  EXPECT_EQ(loud.get("shard_messages"), 0.0);  // fully decomposed
}

// The sweep grid's sim_threads axis tags labels and switches the points to
// shard_metrics, unlike the figure-level --sim-threads flag which must not
// change anything.
TEST(ShardedScenario, GridSimThreadsAxis) {
  exp::SweepGrid g;
  g.label_prefix = "t";
  g.base = shardable_spec();
  g.sim_threads = {1, 4};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].label, "t/t1");
  EXPECT_EQ(specs[1].label, "t/t4");
  EXPECT_EQ(specs[0].sim_threads, 1);
  EXPECT_EQ(specs[1].sim_threads, 4);
  EXPECT_TRUE(specs[0].shard_metrics);
  EXPECT_TRUE(specs[1].shard_metrics);
}
