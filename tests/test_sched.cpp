// The pluggable scheduling layer: policy unit tests, then property sweeps
// over the simulated runtime asserting that the delivery invariants hold
// under *every* route x spill x consumer-steal x block-size combination, that
// parallel sweeps stay bitwise deterministic with load-aware routing, and
// that the threaded runtime's consumer-side stealing conserves blocks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/sched/sched.hpp"
#include "core/rt/runtime.hpp"
#include "exp/artifacts.hpp"
#include "exp/engine.hpp"
#include "exp/grid.hpp"
#include "workflow/runner.hpp"
#include "workflow/zipper_coupling.hpp"

using namespace zipper;
using namespace zipper::core;
using namespace zipper::core::sched;
using common::KiB;
using common::MiB;

// ---------------------------------------------------------------- tokens ----

TEST(SchedTokens, RoundTrip) {
  for (RouteKind k : {RouteKind::kStatic, RouteKind::kRoundRobin,
                      RouteKind::kLeastQueued}) {
    EXPECT_EQ(parse_route(route_token(k)), k);
  }
  for (SpillKind k : {SpillKind::kHighWater, SpillKind::kHysteresis,
                      SpillKind::kAdaptive}) {
    EXPECT_EQ(parse_spill(spill_token(k)), k);
  }
  for (BlockSizeKind k : {BlockSizeKind::kFixed, BlockSizeKind::kAdaptive}) {
    EXPECT_EQ(parse_block_size(block_size_token(k)), k);
  }
  EXPECT_EQ(parse_route("least-queued"), RouteKind::kLeastQueued);
  EXPECT_EQ(parse_spill("hysteresis"), SpillKind::kHysteresis);
  EXPECT_FALSE(parse_route("carrier-pigeon").has_value());
  EXPECT_FALSE(parse_spill("yolo").has_value());
}

// --------------------------------------------------------------- routing ----

TEST(RoutePolicyTest, StaticMatchesConsumerOf) {
  SchedConfig cfg;
  const int P = 7, Q = 3;
  RoutePolicy route(cfg, P, Q);
  SchedContext ctx(P, Q);
  for (int p = 0; p < P; ++p) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(route.consumer_for(BlockId{2, p, b}, ctx),
                consumer_of(BlockId{2, p, b}, P, Q));
    }
  }
  EXPECT_TRUE(route.pinned());
  for (int c = 0; c < Q; ++c) {
    EXPECT_EQ(route.expected_producers(c), producers_of_consumer(c, P, Q));
  }
}

TEST(RoutePolicyTest, RoundRobinSpreadsEveryProducerAcrossConsumers) {
  SchedConfig cfg;
  cfg.route = RouteKind::kRoundRobin;
  const int P = 4, Q = 3;
  RoutePolicy route(cfg, P, Q);
  SchedContext ctx(P, Q);
  EXPECT_FALSE(route.pinned());
  for (int p = 0; p < P; ++p) {
    std::set<int> seen;
    for (int b = 0; b < 12; ++b) {
      const int c = route.consumer_for(BlockId{0, p, b}, ctx);
      ASSERT_GE(c, 0);
      ASSERT_LT(c, Q);
      seen.insert(c);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(Q)) << "producer " << p;
    // Non-pinned routing: done messages must reach every consumer.
    EXPECT_EQ(route.consumers_fed_by(p).size(), static_cast<std::size_t>(Q));
    EXPECT_EQ(route.expected_producers(0), P);
  }
}

TEST(RoutePolicyTest, LeastQueuedFollowsOutstandingCounts) {
  SchedConfig cfg;
  cfg.route = RouteKind::kLeastQueued;
  RoutePolicy route(cfg, 4, 3);
  SchedContext ctx(4, 3);
  ctx.on_routed(0);
  ctx.on_routed(0);
  ctx.on_routed(1);
  EXPECT_EQ(route.consumer_for(BlockId{0, 0, 0}, ctx), 2);
  ctx.on_routed(2);
  ctx.on_routed(2);
  EXPECT_EQ(route.consumer_for(BlockId{0, 0, 1}, ctx), 1);
  ctx.on_analyzed(0);
  ctx.on_analyzed(0);
  EXPECT_EQ(route.consumer_for(BlockId{0, 0, 2}, ctx), 0);
  // Ties break to the lowest index for determinism.
  SchedContext fresh(4, 3);
  EXPECT_EQ(route.consumer_for(BlockId{0, 3, 9}, fresh), 0);
}

// -------------------------------------------------------------- spilling ----

TEST(SpillPolicyTest, HighWaterMatchesStealPolicyExactly) {
  SchedConfig cfg;
  StealPolicy base{16, 0.5, true};
  SpillPolicy spill(cfg, base);
  for (std::size_t n = 0; n <= 16; ++n) {
    EXPECT_EQ(spill.should_spill(n, 0), base.should_steal(n)) << n;
    EXPECT_EQ(spill.wake_writer(n), base.should_steal(n)) << n;
  }
}

TEST(SpillPolicyTest, DisabledNeverSpills) {
  for (SpillKind k : {SpillKind::kHighWater, SpillKind::kHysteresis,
                      SpillKind::kAdaptive}) {
    SchedConfig cfg;
    cfg.spill = k;
    SpillPolicy spill(cfg, StealPolicy{8, 0.5, false});
    EXPECT_FALSE(spill.should_spill(8, 1000));
    EXPECT_FALSE(spill.wake_writer(8));
  }
}

TEST(SpillPolicyTest, HysteresisDrainsToLowWater) {
  SchedConfig cfg;
  cfg.spill = SpillKind::kHysteresis;
  cfg.low_water = 0.25;
  SpillPolicy spill(cfg, StealPolicy{16, 0.5, true});  // hi = 8, lo = 4
  EXPECT_FALSE(spill.should_spill(8, 0));  // below/at hi: not armed
  EXPECT_TRUE(spill.should_spill(9, 0));   // arms
  EXPECT_TRUE(spill.should_spill(7, 0));   // keeps draining below hi...
  EXPECT_TRUE(spill.should_spill(5, 0));
  EXPECT_FALSE(spill.should_spill(4, 0));  // ...until lo: disarms
  EXPECT_FALSE(spill.should_spill(6, 0));  // stays off between lo and hi
  EXPECT_TRUE(spill.should_spill(9, 0));   // re-arms
}

TEST(SpillPolicyTest, AdaptiveLowersBarOnStallAndRecovers) {
  SchedConfig cfg;
  cfg.spill = SpillKind::kAdaptive;
  cfg.spill_recovery_checks = 2;
  SpillPolicy spill(cfg, StealPolicy{16, 0.5, true});  // start threshold 8
  EXPECT_FALSE(spill.should_spill(7, 0));
  // Each fresh-stall observation lowers the threshold by one block.
  EXPECT_FALSE(spill.should_spill(7, 100));  // threshold 8 -> 7; 7 !> 7
  EXPECT_TRUE(spill.should_spill(7, 200));   // threshold 7 -> 6; 7 > 6
  // Calm checks raise it back.
  EXPECT_FALSE(spill.should_spill(5, 200));
  EXPECT_FALSE(spill.should_spill(5, 200));  // 2nd calm check: 6 -> 7
  EXPECT_TRUE(spill.should_spill(8, 200));
}

TEST(SpillPolicyTest, WakeHintIsSupersetOfSpillDecision) {
  for (SpillKind k : {SpillKind::kHighWater, SpillKind::kHysteresis,
                      SpillKind::kAdaptive}) {
    SchedConfig cfg;
    cfg.spill = k;
    SpillPolicy spill(cfg, StealPolicy{16, 0.5, true});
    std::uint64_t stall = 0;
    for (int i = 0; i < 200; ++i) {
      const std::size_t size = static_cast<std::size_t>((i * 7) % 17);
      if (i % 5 == 0) stall += 50;
      const bool wake = spill.wake_writer(size);
      if (spill.should_spill(size, stall)) {
        EXPECT_TRUE(wake) << spill_token(k) << " size " << size
                          << ": writer would sleep through a spill decision";
      }
    }
  }
}

// ------------------------------------------------------------ block size ----

TEST(BlockSizerTest, FixedIgnoresStall) {
  SchedConfig cfg;
  BlockSizer sizer(cfg, MiB);
  EXPECT_EQ(sizer.next_block_bytes(0), MiB);
  EXPECT_EQ(sizer.next_block_bytes(1000000), MiB);
}

TEST(BlockSizerTest, AdaptiveCoarsensUnderStallAndRelaxes) {
  SchedConfig cfg;
  cfg.block_size = BlockSizeKind::kAdaptive;
  cfg.block_size_max_multiple = 4;
  BlockSizer sizer(cfg, MiB);
  EXPECT_EQ(sizer.next_block_bytes(0), MiB);         // calm: base
  EXPECT_EQ(sizer.next_block_bytes(100), 2 * MiB);   // stall: doubles
  EXPECT_EQ(sizer.next_block_bytes(200), 4 * MiB);   // more stall: doubles
  EXPECT_EQ(sizer.next_block_bytes(300), 4 * MiB);   // capped at 4x base
  EXPECT_EQ(sizer.next_block_bytes(300), 4 * MiB);   // calm check 1
  EXPECT_EQ(sizer.next_block_bytes(300), 2 * MiB);   // calm check 2: halves
  EXPECT_EQ(sizer.next_block_bytes(300), 2 * MiB);
  EXPECT_EQ(sizer.next_block_bytes(300), MiB);       // back to base, stays
  EXPECT_EQ(sizer.next_block_bytes(300), MiB);
  EXPECT_EQ(sizer.next_block_bytes(300), MiB);
}

// ----------------------------------------- DES runtime: delivery invariants --

namespace {

struct ComboCase {
  RouteKind route;
  SpillKind spill;
  bool consumer_steal;
  bool adaptive_block;
  bool preserve;
};

std::string combo_name(const ComboCase& c) {
  return route_token(c.route) + "_" + spill_token(c.spill) +
         (c.consumer_steal ? "_csteal" : "_nocsteal") +
         (c.adaptive_block ? "_ablk" : "") + (c.preserve ? "_preserve" : "");
}

std::vector<ComboCase> all_combos() {
  std::vector<ComboCase> out;
  for (RouteKind r : {RouteKind::kStatic, RouteKind::kRoundRobin,
                      RouteKind::kLeastQueued}) {
    for (SpillKind s : {SpillKind::kHighWater, SpillKind::kHysteresis,
                        SpillKind::kAdaptive}) {
      for (bool cs : {false, true}) {
        for (bool ab : {false, true}) {
          for (bool pv : {false, true}) {
            out.push_back({r, s, cs, ab, pv});
          }
        }
      }
    }
  }
  return out;
}

apps::WorkloadProfile combo_profile() {
  apps::WorkloadProfile p;
  p.name = "sched-sweep";
  p.steps = 3;
  p.bytes_per_rank_per_step = 2 * MiB + 256 * KiB;  // non-divisible split
  p.t_collision = sim::from_seconds(0.02);
  p.t_update = sim::from_seconds(0.01);
  p.analysis_ns_per_byte = 30.0;  // consumers lag: pressure + deep queues
  return p;
}

struct Delivery {
  int consumer;
  core::BlockHeader h;
};

struct ComboOutcome {
  workflow::RunResult result;
  core::dsim::SimZipperStats stats;
  std::vector<Delivery> deliveries;
};

ComboOutcome run_combo(const ComboCase& sc) {
  const auto prof = combo_profile();
  core::dsim::SimZipperConfig z;
  z.block_bytes = 512 * KiB;
  z.producer_buffer_blocks = 4;
  z.consumer_buffer_blocks = 8;  // small enough that stealing has material
  z.sender_window = 2;
  z.enable_steal = true;
  z.preserve = sc.preserve;
  z.sched.route = sc.route;
  z.sched.spill = sc.spill;
  z.sched.consumer_steal = sc.consumer_steal;
  z.sched.steal_min_queue = 2;
  z.sched.block_size = sc.adaptive_block ? BlockSizeKind::kAdaptive
                                         : BlockSizeKind::kFixed;
  ComboOutcome out;
  z.on_analyzed = [&out](int c, const core::BlockHeader& h) {
    out.deliveries.push_back({c, h});
  };
  workflow::Layout layout{5, 3, 0};  // contiguous shares {2, 2, 1}: imbalanced
  workflow::Cluster cluster(workflow::ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  out.result = workflow::run_workflow(cluster, prof, &coupling);
  out.stats = coupling.stats();
  return out;
}

}  // namespace

class SchedCombos : public ::testing::TestWithParam<ComboCase> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedCombos,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) { return combo_name(info.param); });

TEST_P(SchedCombos, EveryBlockDeliveredExactlyOnceAndBytesConserved) {
  const auto out = run_combo(GetParam());
  const auto prof = combo_profile();
  const std::uint64_t total_bytes = 5ull * prof.steps * prof.bytes_per_rank_per_step;

  EXPECT_EQ(out.stats.blocks_analyzed, out.stats.blocks_total);
  EXPECT_EQ(out.deliveries.size(), out.stats.blocks_analyzed);
  EXPECT_EQ(out.stats.bytes_via_network + out.stats.bytes_via_pfs, total_bytes);

  std::set<BlockId> seen;
  std::uint64_t delivered_bytes = 0;
  for (const auto& d : out.deliveries) {
    EXPECT_TRUE(seen.insert(d.h.id).second)
        << d.h.id.to_string() << " delivered twice";
    delivered_bytes += d.h.bytes;
  }
  EXPECT_EQ(delivered_bytes, total_bytes);
  if (!GetParam().consumer_steal) {
    EXPECT_EQ(out.stats.blocks_consumer_stolen, 0u);
  }
}

TEST_P(SchedCombos, NetworkPathDeliveriesStayInProductionOrderPerPair) {
  // The preserve/in-order contract: whatever the schedule, the network
  // channel never reorders a producer's blocks as seen by any one consumer —
  // stealing moves only whole ready blocks, and a stolen subsequence of a
  // FIFO is still in order. (Spilled blocks ride the reader path, which
  // reorders relative to the network by design; they are excluded.)
  const auto out = run_combo(GetParam());
  std::map<std::pair<int, int>, BlockId> last;  // (producer, consumer) -> id
  for (const auto& d : out.deliveries) {
    if (d.h.on_disk) continue;
    const std::pair<int, int> key{d.h.id.producer, d.consumer};
    const auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_LT(it->second, d.h.id)
          << "producer " << key.first << " -> consumer " << key.second
          << " went backwards";
    }
    last[key] = d.h.id;
  }
}

TEST_P(SchedCombos, PreserveModePersistsEveryByte) {
  const auto& sc = GetParam();
  if (!sc.preserve) return;
  const auto prof = combo_profile();
  core::dsim::SimZipperConfig z;
  z.block_bytes = 512 * KiB;
  z.producer_buffer_blocks = 4;
  z.consumer_buffer_blocks = 8;
  z.enable_steal = true;
  z.preserve = true;
  z.sched.route = sc.route;
  z.sched.spill = sc.spill;
  z.sched.consumer_steal = sc.consumer_steal;
  z.sched.steal_min_queue = 2;
  z.sched.block_size = sc.adaptive_block ? BlockSizeKind::kAdaptive
                                         : BlockSizeKind::kFixed;
  workflow::Layout layout{5, 3, 0};
  workflow::Cluster cluster(workflow::ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  workflow::run_workflow(cluster, prof, &coupling);
  const std::uint64_t total_bytes = 5ull * prof.steps * prof.bytes_per_rank_per_step;
  EXPECT_GE(cluster.fs->total_bytes_written(), total_bytes);
}

TEST(SchedRuntime, ConsumerStealingEngagesOnImbalance) {
  ComboCase sc{RouteKind::kStatic, SpillKind::kHighWater,
               /*consumer_steal=*/true, false, false};
  const auto out = run_combo(sc);
  EXPECT_GT(out.stats.blocks_consumer_stolen, 0u)
      << "idle consumers never stole despite a 2:1 load imbalance";
}

TEST(SchedRuntime, DeterministicReplayUnderNonDefaultPolicies) {
  for (const ComboCase sc :
       {ComboCase{RouteKind::kLeastQueued, SpillKind::kAdaptive, true, true, false},
        ComboCase{RouteKind::kRoundRobin, SpillKind::kHysteresis, true, false, true}}) {
    const auto a = run_combo(sc);
    const auto b = run_combo(sc);
    EXPECT_EQ(a.result.end_to_end_s, b.result.end_to_end_s);
    EXPECT_EQ(a.stats.blocks_consumer_stolen, b.stats.blocks_consumer_stolen);
    EXPECT_EQ(a.stats.bytes_via_network, b.stats.bytes_via_network);
    ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
    for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
      EXPECT_EQ(a.deliveries[i].consumer, b.deliveries[i].consumer);
      EXPECT_EQ(a.deliveries[i].h.id, b.deliveries[i].h.id);
    }
  }
}

// ------------------------------------------- parallel-sweep determinism ----

TEST(SchedSweep, LoadAwareRoutingStaysBitwiseIdenticalAcrossJobs) {
  exp::SweepGrid g;
  g.label_prefix = "sched";
  g.base.cluster = "bridges";
  g.base.workload = exp::Workload::kSyntheticLinear;
  g.base.steps = 2;
  g.base.producers = 10;
  g.base.consumers = 4;
  g.base.method = transports::Method::kZipper;
  g.base.zipper.block_bytes = MiB;
  g.base.zipper.producer_buffer_blocks = 8;
  g.routes = {RouteKind::kLeastQueued};
  g.consumer_steal = {0, 1};
  g.spills = {SpillKind::kHighWater, SpillKind::kAdaptive};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].label, "sched/route-lq/spill-hw/no-csteal");

  exp::SweepOptions serial;
  serial.jobs = 1;
  const auto r1 = exp::run_sweep(specs, serial);
  exp::SweepOptions parallel;
  parallel.jobs = 4;
  const auto r4 = exp::run_sweep(specs, parallel);

  // Bitwise, not approximate: load-aware routing must read only
  // deterministic DES-internal state, never sweep-thread timing.
  EXPECT_EQ(exp::to_csv(r1), exp::to_csv(r4));
  EXPECT_EQ(exp::to_json(r1), exp::to_json(r4));
}

// ------------------------------------------------- threaded rt runtime ----

TEST(SchedRt, ConsumerStealConservesBlocksAcrossThreads) {
  namespace fs = std::filesystem;
  const auto spill_dir =
      fs::temp_directory_path() / ("zipper_sched_rt_" + std::to_string(::getpid()));
  fs::create_directories(spill_dir);

  rt::Config cfg;
  cfg.spill_dir = spill_dir;
  cfg.producer_buffer_blocks = 8;
  cfg.enable_steal = false;  // single channel: isolate consumer stealing
  cfg.consumer_buffer_blocks = 256;
  cfg.sched.consumer_steal = true;
  cfg.sched.steal_min_queue = 2;
  const int P = 2, Q = 2, blocks = 80;
  std::atomic<std::uint64_t> read_total{0};
  std::mutex mu;
  std::map<std::string, int> seen;
  {
    rt::Runtime runtime(P, Q, cfg);
    std::vector<std::thread> threads;
    for (int p = 0; p < P; ++p) {
      threads.emplace_back([&, p] {
        std::vector<std::byte> payload(4096, std::byte{0x5A});
        for (int b = 0; b < blocks; ++b) {
          runtime.producer(p).write(BlockId{0, p, b}, payload);
        }
        runtime.producer(p).finish();
      });
    }
    for (int c = 0; c < Q; ++c) {
      threads.emplace_back([&, c] {
        while (auto block = runtime.consumer(c).read()) {
          if (c == 0) {
            // A deliberately slow analyst: its backlog is what peer 1 steals.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          read_total.fetch_add(1);
          std::lock_guard lk(mu);
          ++seen[block->header.id.to_string()];
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(read_total.load(), static_cast<std::uint64_t>(P * blocks));
    for (const auto& [id, n] : seen) EXPECT_EQ(n, 1) << id;
    const auto s0 = runtime.consumer(0).stats();
    const auto s1 = runtime.consumer(1).stats();
    EXPECT_EQ(s0.blocks_read + s1.blocks_read,
              static_cast<std::uint64_t>(P * blocks));
  }
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
}

TEST(SchedRt, SuggestedBlockBytesDefaultsToConfiguredBase) {
  rt::Config cfg;
  cfg.block_bytes = 2 * MiB;
  rt::Runtime runtime(1, 1, cfg);
  EXPECT_EQ(runtime.producer(0).suggested_block_bytes(), 2 * MiB);
  runtime.producer(0).finish();
  while (runtime.consumer(0).read()) {
  }
}
