// Unit tests for zipper::common — RNG determinism, streaming statistics,
// checksums, units.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace zc = zipper::common;

TEST(Rng, SameSeedSameStream) {
  zc::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  zc::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  zc::Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  zc::Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  zc::Xoshiro256 r(123);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowStaysBelow) {
  zc::Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Stats, EmptyIsZero) {
  zc::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, SingleValue) {
  zc::RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(Stats, MatchesClosedForm) {
  // Var of 1..n is (n^2-1)/12.
  zc::RunningStats s;
  const int n = 1001;
  for (int i = 1; i <= n; ++i) s.add(i);
  EXPECT_NEAR(s.mean(), (n + 1) / 2.0, 1e-9);
  EXPECT_NEAR(s.variance(), (static_cast<double>(n) * n - 1) / 12.0, 1e-6);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), static_cast<double>(n));
}

TEST(Stats, MergeEqualsSequential) {
  zc::Xoshiro256 r(5);
  zc::RunningStats whole, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = r.uniform(-10, 10);
    whole.add(x);
    (i < 2500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Stats, MergeWithEmpty) {
  zc::RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(zc::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(zc::percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(zc::percentile(v, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(zc::percentile(v, 25), 2.5);
}

TEST(Checksum, EmptyIsOffset) {
  EXPECT_EQ(zc::fnv1a({}), zc::kFnvOffset);
}

TEST(Checksum, KnownVector) {
  // FNV-1a of "a" = 0xaf63dc4c8601ec8c.
  const std::byte b{'a'};
  EXPECT_EQ(zc::fnv1a(std::span<const std::byte>(&b, 1)), 0xAF63DC4C8601EC8Cull);
}

TEST(Checksum, OrderSensitive) {
  std::array<std::byte, 2> ab{std::byte{'a'}, std::byte{'b'}};
  std::array<std::byte, 2> ba{std::byte{'b'}, std::byte{'a'}};
  EXPECT_NE(zc::fnv1a(ab), zc::fnv1a(ba));
}

TEST(Units, Sizes) {
  EXPECT_EQ(zc::KiB, 1024u);
  EXPECT_EQ(zc::MiB, 1024u * 1024u);
  EXPECT_EQ(zc::GiB, 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(zc::bytes_per_ns(12.5e9), 12.5);
}
