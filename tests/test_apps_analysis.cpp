// Tests for the analysis kernels (moments, MSD, synthetic cost models) and
// the calibrated workload profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/analysis/moments.hpp"
#include "apps/analysis/msd.hpp"
#include "apps/profiles.hpp"
#include "apps/synthetic.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using zipper::apps::Complexity;
using zipper::apps::analysis::MomentAccumulator;

TEST(Moments, KnownSmallSample) {
  MomentAccumulator m(4);
  for (double x : {1.0, 2.0, 3.0, 4.0}) m.add(x);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.raw_moment(2), (1 + 4 + 9 + 16) / 4.0);
  EXPECT_NEAR(m.variance(), 1.25, 1e-12);
  // central 3rd of a symmetric sample is 0
  EXPECT_NEAR(m.central_moment(3), 0.0, 1e-12);
  // central 4th: mean of (x-2.5)^4 = (5.0625+0.0625)*2/4
  EXPECT_NEAR(m.central_moment(4), (5.0625 + 0.0625) * 2 / 4.0, 1e-12);
}

TEST(Moments, MatchesRunningStatsVariance) {
  zipper::common::Xoshiro256 rng(3);
  MomentAccumulator m(4);
  zipper::common::RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(-2, 7);
    m.add(x);
    rs.add(x);
  }
  EXPECT_NEAR(m.mean(), rs.mean(), 1e-10);
  EXPECT_NEAR(m.variance(), rs.variance(), 1e-7);
}

TEST(Moments, UniformDistributionClosedForm) {
  // U(0,1): E x^k = 1/(k+1); kurtosis = 9/5.
  zipper::common::Xoshiro256 rng(11);
  MomentAccumulator m(4);
  for (int i = 0; i < 400000; ++i) m.add(rng.uniform());
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(m.raw_moment(k), 1.0 / (k + 1), 3e-3) << "k=" << k;
  }
  EXPECT_NEAR(m.kurtosis(), 1.8, 2e-2);
}

TEST(Moments, MergePartialsEqualsWhole) {
  zipper::common::Xoshiro256 rng(5);
  std::vector<double> xs(10000);
  for (double& x : xs) x = rng.uniform(-1, 1);
  MomentAccumulator whole(6);
  whole.add_span(xs);
  MomentAccumulator a(6), b(6), c(6);
  a.add_span(std::span<const double>(xs).subspan(0, 3000));
  b.add_span(std::span<const double>(xs).subspan(3000, 4000));
  c.add_span(std::span<const double>(xs).subspan(7000));
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), whole.count());
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(a.raw_moment(k), whole.raw_moment(k), 1e-12) << "k=" << k;
  }
}

TEST(Moments, EmptyIsZero) {
  MomentAccumulator m(4);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.kurtosis(), 0.0);
}

TEST(Msd, SimpleDisplacement) {
  // one atom moved by (3,4,0): MSD = 25.
  std::vector<double> ref{0, 0, 0};
  std::vector<double> now{3, 4, 0};
  zipper::apps::analysis::MsdAccumulator msd;
  msd.add_block(now, ref);
  EXPECT_DOUBLE_EQ(msd.value(), 25.0);
  EXPECT_EQ(msd.atoms(), 1u);
}

TEST(Synthetic, WorkUnitsOrdering) {
  // For the same n, O(n) < O(n log n) < O(n^1.5) once n is large.
  const double n = 1 << 20;
  const double lin = zipper::apps::work_units(Complexity::kLinear, n);
  const double nlogn = zipper::apps::work_units(Complexity::kNLogN, n);
  const double n32 = zipper::apps::work_units(Complexity::kN32, n);
  EXPECT_LT(lin, nlogn);
  EXPECT_LT(nlogn, n32);
}

TEST(Synthetic, BlockTimeScalesWithComplexity) {
  using zipper::apps::block_compute_time;
  const auto t_lin = block_compute_time(Complexity::kLinear, 1 << 20, 1e8);
  const auto t_n32 = block_compute_time(Complexity::kN32, 1 << 20, 1e8);
  EXPECT_GT(t_n32, 100 * t_lin);
}

TEST(Synthetic, GenerateBlockProducesFiniteValues) {
  std::vector<double> data(4096);
  for (Complexity c :
       {Complexity::kLinear, Complexity::kNLogN, Complexity::kN32}) {
    const double acc = zipper::apps::generate_block(c, data, 42);
    EXPECT_TRUE(std::isfinite(acc));
    for (double x : data) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Profiles, CfdBridgesMatchesPaperCalibration) {
  const auto p = zipper::apps::cfd_bridges();
  // 100 steps at ~0.39 s/step => simulation-only ~ 39 s (paper: 39.2 s).
  const double sim_only = 100 * zipper::sim::to_seconds(p.compute_per_step());
  EXPECT_NEAR(sim_only, 39.2, 1.0);
  // 128 analysis ranks x 2 producers x 16 MiB/step at 14.4 ns/B ~ 48 s
  // (paper: 48.4 s).
  const double analysis_only =
      100 * zipper::sim::to_seconds(p.analysis_time(2 * p.bytes_per_rank_per_step));
  EXPECT_NEAR(analysis_only, 48.4, 1.5);
}

TEST(Profiles, SyntheticSimTimesMatchFig12) {
  using zipper::apps::synthetic_profile;
  // 1 MB blocks: paper's measured simulation times 2.1 / 22.2 / 64.0 s.
  const double lin = 100 * zipper::sim::to_seconds(
      synthetic_profile(Complexity::kLinear, 1 << 20).compute_per_step());
  const double nlogn = 100 * zipper::sim::to_seconds(
      synthetic_profile(Complexity::kNLogN, 1 << 20).compute_per_step());
  const double n32 = 100 * zipper::sim::to_seconds(
      synthetic_profile(Complexity::kN32, 1 << 20).compute_per_step());
  EXPECT_NEAR(lin, 2.1, 0.3);
  EXPECT_NEAR(nlogn, 22.2, 2.5);
  EXPECT_NEAR(n32, 64.0, 6.0);
}

TEST(Profiles, LammpsStepTimeMatchesFig19) {
  const auto p = zipper::apps::lammps_stampede2();
  // Fig 19: 4.4 steps in 9.1 s => ~2.07 s/step.
  EXPECT_NEAR(zipper::sim::to_seconds(p.compute_per_step()), 2.07, 0.1);
  EXPECT_EQ(p.bytes_per_rank_per_step, 20 * zipper::common::MiB);
}
