// Physics tests for the D3Q19 lattice-Boltzmann solver: conservation laws,
// streaming correctness, wall behaviour, and the Poiseuille channel profile.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/lbm/lbm_solver.hpp"

using zipper::apps::lbm::Dims;
using zipper::apps::lbm::Params;
using zipper::apps::lbm::Solver;

namespace {
Solver make_quiet(Dims d = {8, 8, 8}) {
  Params p;
  p.tau = 0.8;
  return Solver(d, p);
}
}  // namespace

TEST(Lbm, VelocitySetIsConsistent) {
  const auto& c = Solver::velocities();
  const auto& w = Solver::weights();
  double wsum = 0;
  std::array<double, 3> csum{0, 0, 0};
  for (int q = 0; q < Solver::kQ; ++q) {
    wsum += w[static_cast<std::size_t>(q)];
    for (int d = 0; d < 3; ++d) {
      csum[static_cast<std::size_t>(d)] +=
          w[static_cast<std::size_t>(q)] * c[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)];
    }
    // opposite() must reverse the velocity.
    const int o = Solver::opposite(q);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(c[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)],
                -c[static_cast<std::size_t>(o)][static_cast<std::size_t>(d)]);
    }
  }
  EXPECT_NEAR(wsum, 1.0, 1e-14);
  for (double s : csum) EXPECT_NEAR(s, 0.0, 1e-14);
  // Second moment isotropy: sum w c_a c_b = cs^2 delta_ab = 1/3.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double m = 0;
      for (int q = 0; q < Solver::kQ; ++q) {
        m += w[static_cast<std::size_t>(q)] *
             c[static_cast<std::size_t>(q)][static_cast<std::size_t>(a)] *
             c[static_cast<std::size_t>(q)][static_cast<std::size_t>(b)];
      }
      EXPECT_NEAR(m, a == b ? 1.0 / 3.0 : 0.0, 1e-14) << a << "," << b;
    }
  }
}

TEST(Lbm, InitialStateIsUniformRest) {
  Solver s = make_quiet();
  EXPECT_NEAR(s.total_mass(), static_cast<double>(s.dims().cells()), 1e-9);
  for (double m : s.total_momentum()) EXPECT_NEAR(m, 0.0, 1e-12);
  for (double u : s.ux()) EXPECT_EQ(u, 0.0);
}

TEST(Lbm, MassConservedWithoutForce) {
  Solver s = make_quiet({12, 9, 7});
  const double m0 = s.total_mass();
  for (int t = 0; t < 50; ++t) s.step();
  EXPECT_NEAR(s.total_mass(), m0, m0 * 1e-12);
}

TEST(Lbm, MassConservedWithForce) {
  Params p;
  p.tau = 0.9;
  p.force = {1e-6, 0, 0};
  Solver s({10, 9, 6}, p);
  const double m0 = s.total_mass();
  for (int t = 0; t < 100; ++t) s.step();
  EXPECT_NEAR(s.total_mass(), m0, m0 * 1e-10);
}

TEST(Lbm, MomentumStaysZeroWithoutForce) {
  Solver s = make_quiet({8, 7, 9});
  for (int t = 0; t < 30; ++t) s.step();
  for (double m : s.total_momentum()) EXPECT_NEAR(m, 0.0, 1e-10);
}

TEST(Lbm, ForceAcceleratesFlow) {
  Params p;
  p.tau = 0.8;
  p.force = {1e-5, 0, 0};
  Solver s({8, 8, 8}, p);
  s.step();
  const double px1 = s.total_momentum()[0];
  for (int t = 0; t < 20; ++t) s.step();
  const double px2 = s.total_momentum()[0];
  EXPECT_GT(px1, 0.0);
  EXPECT_GT(px2, px1);  // still accelerating long before steady state
  // transverse momentum stays zero
  EXPECT_NEAR(s.total_momentum()[1], 0.0, 1e-10);
  EXPECT_NEAR(s.total_momentum()[2], 0.0, 1e-10);
}

TEST(Lbm, StreamingMovesPulseOneCellPerStep) {
  // Inject an excess of the +x distribution at one cell; after one stream it
  // must appear one cell downstream.
  Solver s = make_quiet({8, 8, 8});
  // q=1 is (+1,0,0). Cell (2, 3, 4) -> index.
  const auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * 8 + static_cast<std::size_t>(y)) * 8 +
           static_cast<std::size_t>(x);
  };
  // Prepare a post-collision state manually: run collide on uniform state
  // (which is a fixed point), then perturb the scratch via set_f + collide
  // trick: easiest is to perturb f, collide with tau=1 is not identity...
  // Instead: perturb f, call stream() directly after copying f into the
  // post-collision buffer through a zero-relaxation collide: use tau large.
  (void)idx;
  Params p;
  p.tau = 1e12;  // effectively no relaxation: collide() copies f
  Solver t({8, 8, 8}, p);
  t.set_f(1, idx(2, 3, 4), t.f(1, idx(2, 3, 4)) + 0.5);
  t.collide();
  t.stream();
  EXPECT_NEAR(t.f(1, idx(3, 3, 4)), Solver::weights()[1] + 0.5, 1e-9);
  EXPECT_NEAR(t.f(1, idx(2, 3, 4)), Solver::weights()[1], 1e-9);
}

TEST(Lbm, StreamingWrapsPeriodicInX) {
  Params p;
  p.tau = 1e12;
  Solver t({8, 8, 8}, p);
  const auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * 8 + static_cast<std::size_t>(y)) * 8 +
           static_cast<std::size_t>(x);
  };
  t.set_f(1, idx(7, 3, 4), t.f(1, idx(7, 3, 4)) + 0.25);
  t.collide();
  t.stream();
  EXPECT_NEAR(t.f(1, idx(0, 3, 4)), Solver::weights()[1] + 0.25, 1e-9);
}

TEST(Lbm, WallBouncesBackDistribution) {
  Params p;
  p.tau = 1e12;
  Solver t({8, 8, 8}, p);
  const auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * 8 + static_cast<std::size_t>(y)) * 8 +
           static_cast<std::size_t>(x);
  };
  // q=3 is (0,+1,0); at the top wall y=7 it must come back as q=4 (0,-1,0).
  const double excess = 0.125;
  t.set_f(3, idx(4, 7, 4), t.f(3, idx(4, 7, 4)) + excess);
  t.collide();
  t.stream();
  EXPECT_NEAR(t.f(4, idx(4, 7, 4)), Solver::weights()[4] + excess, 1e-9);
}

TEST(Lbm, PoiseuilleProfileMatchesAnalytic) {
  // Body-force-driven channel flow between y walls; compare the steady
  // x-velocity profile to u(y) = g/(2 nu) (y+1/2)(H-1/2-y) with H = ny.
  Params p;
  p.tau = 1.0;  // nu = 1/6
  const double g = 1e-6;
  p.force = {g, 0, 0};
  Dims d{4, 11, 4};
  Solver s(d, p);
  for (int t = 0; t < 4000; ++t) s.step();

  const double nu = s.viscosity();
  const auto profile = s.ux_profile();
  double max_rel_err = 0.0;
  for (int y = 0; y < d.ny; ++y) {
    const double yy = y + 0.5;
    const double analytic = g / (2.0 * nu) * yy * (d.ny - yy);
    const double rel =
        std::abs(profile[static_cast<std::size_t>(y)] - analytic) / analytic;
    max_rel_err = std::max(max_rel_err, rel);
  }
  EXPECT_LT(max_rel_err, 0.02) << "Poiseuille profile off by >2%";
}

TEST(Lbm, ProfileIsSymmetricAcrossChannel) {
  Params p;
  p.tau = 0.9;
  p.force = {5e-6, 0, 0};
  Dims d{4, 10, 4};
  Solver s(d, p);
  for (int t = 0; t < 1000; ++t) s.step();
  const auto prof = s.ux_profile();
  for (int y = 0; y < d.ny / 2; ++y) {
    EXPECT_NEAR(prof[static_cast<std::size_t>(y)],
                prof[static_cast<std::size_t>(d.ny - 1 - y)], 1e-12)
        << "asymmetry at y=" << y;
  }
}

TEST(Lbm, SerializeVelocityRoundTrips) {
  Params p;
  p.tau = 0.8;
  p.force = {1e-5, 0, 0};
  Solver s({6, 6, 6}, p);
  for (int t = 0; t < 5; ++t) s.step();
  std::vector<std::byte> buf(s.field_bytes());
  ASSERT_EQ(s.serialize_velocity(buf), s.field_bytes());
  const double* d = reinterpret_cast<const double*>(buf.data());
  for (std::size_t i = 0; i < s.dims().cells(); ++i) {
    EXPECT_EQ(d[3 * i + 0], s.ux()[i]);
    EXPECT_EQ(d[3 * i + 1], s.uy()[i]);
    EXPECT_EQ(d[3 * i + 2], s.uz()[i]);
  }
}
