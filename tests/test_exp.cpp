// The scenario lab: sweep-grid expansion, artifact writers, the registry,
// and the determinism contract that makes parallel sweeps safe — a sweep at
// jobs=4 must produce byte-identical per-scenario results to jobs=1.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>

#include "exp/analyze.hpp"
#include "exp/artifacts.hpp"
#include "exp/engine.hpp"
#include "exp/grid.hpp"
#include "exp/lab.hpp"
#include "exp/registry.hpp"
#include "workflow/pipeline.hpp"

using namespace zipper;
using namespace zipper::exp;
using transports::Method;

namespace {

SweepGrid small_grid() {
  SweepGrid g;
  g.label_prefix = "t";
  g.base.cluster = "bridges";
  g.base.workload = Workload::kSyntheticLinear;
  g.base.steps = 2;
  g.base.method = Method::kZipper;
  g.base.zipper.block_bytes = common::MiB;
  g.base.zipper.producer_buffer_blocks = 8;
  return g;
}

}  // namespace

// ------------------------------------------------------------------- grid --

TEST(SweepGrid, NoAxesExpandsToBase) {
  SweepGrid g = small_grid();
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].label, "t");
  EXPECT_EQ(specs[0].steps, 2);
  EXPECT_EQ(g.size(), 1u);
}

TEST(SweepGrid, CartesianProductOverThreeAxes) {
  SweepGrid g = small_grid();
  g.methods = {Method::kZipper, Method::kDecaf, std::nullopt};
  g.cores = {84, 168};
  g.block_kib = {256, 1024};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 12u);
  EXPECT_EQ(g.size(), 12u);

  // Labels are unique and self-describing.
  std::set<std::string> labels;
  for (const auto& s : specs) labels.insert(s.label);
  EXPECT_EQ(labels.size(), specs.size());
  EXPECT_TRUE(labels.count("t/zipper/c84/b256k"));
  EXPECT_TRUE(labels.count("t/sim-only/c168/b1024k"));

  // Row-major order: methods outermost, blocks innermost.
  EXPECT_EQ(specs[0].label, "t/zipper/c84/b256k");
  EXPECT_EQ(specs[1].label, "t/zipper/c84/b1024k");
  EXPECT_EQ(specs[2].label, "t/zipper/c168/b256k");

  // Axis values land in the spec fields.
  for (const auto& s : specs) {
    if (s.label.find("/c84/") != std::string::npos) {
      EXPECT_EQ(s.producers, 56);  // 84 * 2/3
      EXPECT_EQ(s.consumers, 28);
    }
    if (s.label.find("b1024k") != std::string::npos) {
      EXPECT_EQ(s.zipper.block_bytes, 1024 * common::KiB);
    }
    if (s.label.find("sim-only") != std::string::npos) {
      EXPECT_FALSE(s.method.has_value());
    }
  }
}

TEST(SweepGrid, SeedAxisReplicatesScenario) {
  SweepGrid g = small_grid();
  g.base.background_load_intensity = 0.4;
  g.seeds = {7, 8, 9};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(specs[i].background_load_seed, 7 + i);
    EXPECT_EQ(specs[i].label, "t/seed" + std::to_string(7 + i));
    // Everything but the seed is identical replication.
    EXPECT_EQ(specs[i].steps, specs[0].steps);
    EXPECT_EQ(specs[i].producers, specs[0].producers);
    EXPECT_EQ(specs[i].background_load_intensity, 0.4);
  }
}

TEST(SweepGrid, PreserveAndStealAxes) {
  SweepGrid g = small_grid();
  g.steal_thresholds = {0.25, 0.75};
  g.preserve = {0, 1};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].zipper.high_water, 0.25);
  EXPECT_FALSE(specs[0].zipper.preserve);
  EXPECT_TRUE(specs[1].zipper.preserve);
  EXPECT_EQ(specs[3].label, "t/hw0.75/preserve");
}

TEST(SweepGrid, CoresAndRanksAreMutuallyExclusive) {
  SweepGrid g = small_grid();
  g.cores = {84};
  g.ranks = {{8, 4}};
  EXPECT_THROW(g.expand(), std::invalid_argument);
  EXPECT_THROW(g.size(), std::invalid_argument);
}

TEST(SweepGrid, ExplicitRanksAxis) {
  SweepGrid g = small_grid();
  g.ranks = {{8, 4}, {16, 2}};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].producers, 16);
  EXPECT_EQ(specs[1].consumers, 2);
  EXPECT_EQ(specs[1].label, "t/p16q2");
}

// -------------------------------------------------------------- scenarios --

TEST(Scenario, PipelineScheduleMatchesFig11) {
  ScenarioSpec s;
  s.label = "sched";
  s.kind = ScenarioKind::kPipelineSchedule;
  s.schedule_blocks = 7;
  s.schedule_stage_s = {1.0, 1.0, 1.0, 1.0};
  const auto r = run_scenario(s);
  EXPECT_FALSE(r.crashed);
  EXPECT_DOUBLE_EQ(r.get("makespan_non_integrated"), 28.0);
  EXPECT_DOUBLE_EQ(r.get("makespan_integrated"), 10.0);
  EXPECT_NEAR(r.get("speedup"), 2.8, 1e-12);
}

TEST(Scenario, ModelInputMatchesSpec) {
  ScenarioSpec s;
  s.cluster = "bridges";
  s.workload = Workload::kSyntheticLinear;
  s.steps = 4;
  s.producers = 8;
  s.consumers = 4;
  s.zipper.block_bytes = common::MiB;
  const auto in = model_input_for(s);
  EXPECT_EQ(in.producers, 8);
  EXPECT_EQ(in.consumers, 4);
  EXPECT_EQ(in.total_bytes, 8ull * 4 * 20 * common::MiB);
  EXPECT_EQ(in.block_bytes, common::MiB);
  EXPECT_GT(in.tc_s, 0);
  EXPECT_GT(in.tm_s, 0);
  EXPECT_GT(in.ta_s, 0);
}

TEST(Scenario, UnknownClusterThrows) {
  ScenarioSpec s;
  s.cluster = "summit";
  EXPECT_THROW(make_cluster_spec(s), std::invalid_argument);
}

TEST(Scenario, SimOnlyDropsConsumerRanks) {
  ScenarioSpec s;
  s.cluster = "bridges";
  s.workload = Workload::kSyntheticLinear;
  s.steps = 1;
  s.producers = 4;
  s.consumers = 2;
  const auto r = run_scenario(s);
  EXPECT_FALSE(r.crashed);
  EXPECT_EQ(r.get("consumers"), 0);
  EXPECT_GT(r.get("end_to_end_s"), 0);
}

// ------------------------------------------------------------ determinism --

TEST(SweepEngine, ParallelSweepIsByteIdenticalToSerial) {
  SweepGrid g = small_grid();
  g.methods = {Method::kZipper, std::nullopt};
  g.cores = {12, 24};
  const auto specs = g.expand();
  ASSERT_EQ(specs.size(), 4u);

  SweepOptions serial;
  serial.jobs = 1;
  const auto r1 = run_sweep(specs, serial);

  SweepOptions parallel;
  parallel.jobs = 4;
  const auto r4 = run_sweep(specs, parallel);

  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].label, r4[i].label);
    EXPECT_EQ(r1[i].crashed, r4[i].crashed);
    ASSERT_EQ(r1[i].metrics.size(), r4[i].metrics.size()) << r1[i].label;
    for (std::size_t k = 0; k < r1[i].metrics.size(); ++k) {
      EXPECT_EQ(r1[i].metrics[k].first, r4[i].metrics[k].first);
      // Bitwise equality, not a tolerance: the DES is deterministic and the
      // engine must not perturb it.
      EXPECT_EQ(r1[i].metrics[k].second, r4[i].metrics[k].second)
          << r1[i].label << " / " << r1[i].metrics[k].first;
    }
  }

  // The serialized artifacts are the contract consumers see.
  EXPECT_EQ(to_csv(r1), to_csv(r4));
  EXPECT_EQ(to_json(r1), to_json(r4));
}

TEST(SweepEngine, RepeatedRunsAreIdentical) {
  SweepGrid g = small_grid();
  g.cores = {12};
  const auto specs = g.expand();
  const auto a = run_sweep(specs, {});
  const auto b = run_sweep(specs, {});
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(SweepEngine, ProgressCallbackCoversEveryScenario) {
  SweepGrid g = small_grid();
  g.cores = {12, 24};
  const auto specs = g.expand();
  std::set<std::string> seen;
  std::size_t max_done = 0;
  SweepOptions opts;
  opts.jobs = 2;
  opts.on_done = [&](const ScenarioSpec& spec, const ScenarioResult&,
                     std::size_t done, std::size_t total) {
    seen.insert(spec.label);
    max_done = std::max(max_done, done);
    EXPECT_EQ(total, specs.size());
  };
  run_sweep(specs, opts);
  EXPECT_EQ(seen.size(), specs.size());
  EXPECT_EQ(max_done, specs.size());
}

TEST(SweepEngine, ThrowingScenarioReportsCrashNotAbort) {
  ScenarioSpec bad;
  bad.label = "bad";
  bad.cluster = "summit";  // make_cluster_spec throws
  const auto rs = run_sweep({bad}, {});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_TRUE(rs[0].crashed);
  EXPECT_NE(rs[0].note.find("summit"), std::string::npos);
}

TEST(SweepEngine, PartialFailureKeepsOtherRowsAndCsvSchema) {
  // One mid-sweep scenario throws (a non-trivial pipeline on a non-Zipper
  // transport is rejected by run_scenario); the surviving rows still emit
  // full metrics and the CSV schema stays stable — same metric columns,
  // plus the `error` column exactly because a row carries an error.
  SweepGrid g = small_grid();
  auto specs = g.expand();
  ASSERT_EQ(specs.size(), 1u);
  specs.push_back(specs[0]);
  specs.push_back(specs[0]);
  specs[0].label = "t/ok0";
  specs[1].label = "t/bad";
  specs[1].method = Method::kDecaf;
  specs[1].pipeline = workflow::make_chain(2);
  specs[2].label = "t/ok1";

  SweepOptions opts;
  opts.jobs = 2;
  const auto rs = run_sweep(specs, opts);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_FALSE(rs[0].crashed);
  EXPECT_TRUE(rs[0].has("end_to_end_s"));
  EXPECT_TRUE(rs[1].crashed);
  EXPECT_NE(rs[1].error.find("--method zipper"), std::string::npos);
  EXPECT_FALSE(rs[2].crashed);
  EXPECT_TRUE(rs[2].has("end_to_end_s"));
  // The crash is per-row: the survivors match a sweep that never saw the
  // bad scenario.
  const auto clean = run_sweep({specs[0], specs[2]}, {});
  EXPECT_EQ(to_csv({rs[0], rs[2]}), to_csv(clean));

  const auto csv = to_csv(rs);
  const auto clean_csv = to_csv(clean);
  auto header = csv.substr(0, csv.find('\n'));
  const auto clean_header = clean_csv.substr(0, clean_csv.find('\n'));
  // `error` slots in after the fixed columns; the metric union is unchanged.
  const auto pos = header.find(",error");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(header.erase(pos, 6), clean_header);
  EXPECT_NE(csv.find("--method zipper"), std::string::npos);
}

// -------------------------------------------------------------- artifacts --

TEST(Artifacts, CsvUnionColumnsAndEscaping) {
  ScenarioResult a;
  a.label = "a,1";  // forces quoting
  a.put("x", 1);
  a.put("y", 2.5);
  ScenarioResult b;
  b.label = "b";
  b.put("y", 3);
  b.put("z", 4);
  const auto csv = to_csv({a, b});
  EXPECT_EQ(csv,
            "label,crashed,note,x,y,z\n"
            "\"a,1\",0,,1,2.5,\n"
            "b,0,,,3,4\n");
}

TEST(Artifacts, JsonShape) {
  ScenarioResult a;
  a.label = "s\"1";
  a.crashed = true;
  a.note = "boom";
  a.put("v", 7);
  const auto json = to_json({a});
  EXPECT_NE(json.find("\"label\": \"s\\\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"crashed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"v\": 7"), std::string::npos);
}

TEST(Artifacts, DoublesRoundTrip) {
  ScenarioResult a;
  a.label = "r";
  a.put("pi", 3.141592653589793);
  const auto csv = to_csv({a});
  EXPECT_NE(csv.find("3.141592653589793"), std::string::npos);
}

TEST(Artifacts, NonFiniteMetricsAreEmptyCsvCellsAndJsonNull) {
  ScenarioResult a;
  a.label = "n";
  a.put("err", std::numeric_limits<double>::quiet_NaN());
  a.put("ok", 1);
  // A NaN (e.g. a broken calibration's relative error) must not print as a
  // number: the CSV cell stays empty, the JSON value is null.
  EXPECT_EQ(to_csv({a}),
            "label,crashed,note,err,ok\n"
            "n,0,,,1\n");
  EXPECT_NE(to_json({a}).find("\"err\": null"), std::string::npos);
}

// --------------------------------------------------------------- registry --

TEST(Registry, EveryFigureHasScenariosWithUniqueLabels) {
  ASSERT_FALSE(registry().empty());
  std::set<std::string> names;
  for (const auto& fig : registry()) {
    EXPECT_TRUE(names.insert(fig.name).second) << "duplicate " << fig.name;
    EXPECT_FALSE(fig.title.empty());
    EXPECT_FALSE(fig.expect.empty());
    for (bool full : {false, true}) {
      const auto specs = fig.scenarios(full);
      EXPECT_FALSE(specs.empty()) << fig.name;
      std::set<std::string> labels;
      for (const auto& s : specs) {
        EXPECT_TRUE(labels.insert(s.label).second)
            << fig.name << " duplicate label " << s.label;
        // Labels namespace under the figure so artifact rows are greppable.
        EXPECT_EQ(s.label.rfind(fig.name + "/", 0), 0u)
            << fig.name << " label " << s.label;
      }
    }
  }
}

TEST(Registry, FindFigure) {
  EXPECT_NE(find_figure("fig02"), nullptr);
  EXPECT_NE(find_figure("ablation-servers"), nullptr);
  EXPECT_EQ(find_figure("fig99"), nullptr);
}

TEST(Registry, PaperFiguresAreAllRegistered) {
  for (const char* name : {"fig02", "fig03", "fig04", "fig05", "fig06", "fig11",
                           "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
                           "fig18", "fig19"}) {
    EXPECT_NE(find_figure(name), nullptr) << name;
  }
}

// ---------------------------------------------------------------- parsing --

TEST(Parsing, MethodTokensRoundTrip) {
  for (Method m : transports::all_methods()) {
    const auto parsed = transports::parse_method(transports::method_token(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(transports::parse_method("MPI-IO"), Method::kMpiIo);
  EXPECT_FALSE(transports::parse_method("carrier-pigeon").has_value());
}

TEST(Parsing, WorkloadTokensRoundTrip) {
  for (Workload w : {Workload::kCfdBridges, Workload::kCfdStampede2,
                     Workload::kLammpsStampede2, Workload::kSyntheticLinear,
                     Workload::kSyntheticNLogN, Workload::kSyntheticN32}) {
    const auto parsed = parse_workload(workload_token(w));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, w);
  }
  EXPECT_FALSE(parse_workload("spectral-em").has_value());
}

TEST(Parsing, ClusterByName) {
  ASSERT_TRUE(workflow::ClusterSpec::by_name("bridges").has_value());
  EXPECT_EQ(workflow::ClusterSpec::by_name("Stampede2")->name, "Stampede2");
  EXPECT_FALSE(workflow::ClusterSpec::by_name("frontier").has_value());
}

TEST(Parsing, JobsRejectsTrailingJunkAndGarbage) {
  int jobs = -1;
  EXPECT_TRUE(parse_jobs("4", &jobs));
  EXPECT_EQ(jobs, 4);
  EXPECT_FALSE(parse_jobs("foo", &jobs));
  EXPECT_FALSE(parse_jobs("2x", &jobs));  // atoi would have said 2
  EXPECT_FALSE(parse_jobs("", &jobs));
  EXPECT_FALSE(parse_jobs("4.5", &jobs));
  // Out-of-int-range values must not wrap through the int truncation
  // (-4294967294 would otherwise come out as jobs=2).
  EXPECT_FALSE(parse_jobs("-4294967294", &jobs));
  EXPECT_FALSE(parse_jobs("4294967298", &jobs));
}

TEST(Parsing, FigureMainRejectsMalformedJobsFlag) {
  // "-jfoo" used to atoi to 0 and silently clamp to 1; now it is a usage
  // error (exit code 2) before any scenario runs.
  char prog[] = "fig11_pipeline_model";
  char bad_joined[] = "-jfoo";
  char* argv1[] = {prog, bad_joined};
  EXPECT_EQ(figure_main("fig11", 2, argv1), 2);

  char jflag[] = "-j";
  char bad_split[] = "2x";
  char* argv2[] = {prog, jflag, bad_split};
  EXPECT_EQ(figure_main("fig11", 3, argv2), 2);
}

// ---------------------------------------------------------------- analyze --

TEST(Analyze, ObserveRequiresTracedZipperWorkflow) {
  ScenarioSpec spec;
  spec.workload = Workload::kSyntheticLinear;
  spec.producers = 4;
  spec.consumers = 2;
  ScenarioResult r;
  model::TraceObservation obs;
  EXPECT_FALSE(observe(spec, r, &obs));  // no method at all

  spec.method = Method::kDecaf;
  EXPECT_FALSE(observe(spec, r, &obs));  // not the Zipper runtime

  spec.method = Method::kZipper;
  EXPECT_FALSE(observe(spec, r, &obs));  // no sender_busy_s metric

  r.put("sender_busy_s", 3.0);
  r.put("analysis_busy_s", 2.0);
  ASSERT_TRUE(observe(spec, r, &obs));
  EXPECT_EQ(obs.producers, 4);
  EXPECT_EQ(obs.consumers, 2);
  EXPECT_DOUBLE_EQ(obs.transfer_total_s, 3.0);
  EXPECT_GT(obs.total_bytes, 0u);

  r.crashed = true;
  EXPECT_FALSE(observe(spec, r, &obs));
}

TEST(Analyze, PipelineWritesTraceAndCalibratedArtifacts) {
  ScenarioSpec base;
  base.cluster = "bridges";
  base.workload = Workload::kSyntheticLinear;
  base.steps = 2;
  base.producers = 8;
  base.consumers = 4;
  base.method = Method::kZipper;
  base.zipper.block_bytes = common::MiB;
  base.zipper.producer_buffer_blocks = 8;

  std::vector<ScenarioSpec> specs;
  for (int steps : {2, 3}) {
    auto s = base;
    s.steps = steps;
    s.label = "smoke/steps" + std::to_string(steps);
    specs.push_back(s);
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("zipper_analyze_test_" + std::to_string(::getpid()));
  AnalyzeOptions opts;
  opts.artifacts_dir = dir.string();
  opts.table_ranks = 2;
  EXPECT_EQ(analyze_scenarios("smoke", specs, opts), 0);

  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream f(p);
    EXPECT_TRUE(f.good()) << p;
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
  };
  const std::string trace = slurp(dir / "smoke.trace.json");
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("smoke/steps2"), std::string::npos);
  EXPECT_NE(trace.find("smoke/steps3"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string csv = slurp(dir / "smoke.analysis.csv");
  EXPECT_NE(csv.find("attr_stall_s"), std::string::npos);
  EXPECT_NE(csv.find("calib_rel_err"), std::string::npos);
  EXPECT_NE(csv.find("calib_end_to_end_s"), std::string::npos);
  const std::string json = slurp(dir / "smoke.analysis.json");
  EXPECT_NE(json.find("\"calib_rel_err\""), std::string::npos);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Analyze, CalibrationPredictsTheCalibrationScenarioItself) {
  // Fit on one traced scenario and predict the same scenario: the model's
  // Tt2s must land within pipeline-fill distance of the measured time.
  ScenarioSpec spec;
  spec.cluster = "bridges";
  spec.workload = Workload::kSyntheticLinear;
  spec.steps = 3;
  spec.producers = 8;
  spec.consumers = 4;
  spec.method = Method::kZipper;
  spec.zipper.block_bytes = common::MiB;
  spec.zipper.producer_buffer_blocks = 8;
  spec.record_traces = true;
  spec.label = "roundtrip";

  const auto r = run_scenario(spec);
  ASSERT_FALSE(r.crashed);
  model::TraceObservation obs;
  ASSERT_TRUE(observe(spec, r, &obs));
  const auto calib = model::fit(obs);
  ASSERT_TRUE(calib.valid);
  const auto in = model::calibrated_input(
      calib, obs.total_bytes, spec.zipper.block_bytes, obs.producers,
      obs.consumers, spec.zipper.preserve);
  const auto pred = model::predict(in);
  const double err = model::relative_error(r.get("end_to_end_s"), pred);
  ASSERT_TRUE(std::isfinite(err));
  EXPECT_LT(std::abs(err), 0.35) << "measured " << r.get("end_to_end_s")
                                 << " predicted " << pred.t_end_to_end;
}
