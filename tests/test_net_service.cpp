// Differential suite for the real-I/O backend (docs/service.md): the same
// unified zipper body that runs on the VirtualTimeExecutor is bound to the
// EpollExecutor and driven across a real localhost socket by an in-process
// zipperd + client pair. The streaming invariants must agree:
//
//   * exactly-once — both executors analyze exactly the same block-id set;
//   * per-(producer,consumer) FIFO — production order survives the DES event
//     loop and the length-prefixed TCP frame stream alike;
//   * conservation — analyzed == network + disk on both sides of the wire.
//
// Plus the frame-codec edge cases (truncated header, oversized length,
// byte-by-byte split reads, checksum corruption), the chaos ladder against a
// live daemon (fault window -> retry/backoff -> degrade to the shared spill
// directory), peer resets mid-block, and the EpollExecutor primitive
// contract (timer ordering, channel backpressure, deadlock detection).
//
// Flake-proofing contract for CI: every server here binds port 0 and the
// client reads the kernel-assigned port back from the server object — no
// fixed ports, no startup sleeps (the listener is live when the constructor
// returns).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/profiles.hpp"
#include "common/units.hpp"
#include "core/exec/epoll.hpp"
#include "core/zipper/net_frame.hpp"
#include "core/zipper/net_service.hpp"
#include "workflow/runner.hpp"
#include "workflow/zipper_coupling.hpp"

namespace fs = std::filesystem;
using namespace zipper;
using common::KiB;
using core::BlockHeader;
using core::BlockId;
// Alias is `znet` (not `net`) to dodge the ambiguity with zipper::net
// (net/fabric.hpp) under `using namespace zipper`.
namespace znet = core::zbody::net;
namespace exec = core::exec;

namespace {

// Shared geometry, identical on both executors (non-divisible step size so
// the last block of every step is short).
constexpr int kP = 4;
constexpr int kQ = 2;
constexpr int kSteps = 3;
constexpr std::uint64_t kBlockBytes = 64 * KiB;
constexpr std::uint64_t kStepBytes = 5 * 64 * KiB + 32 * KiB;
constexpr int kBlocksPerStep = 6;
constexpr std::uint64_t kExpectedBlocks =
    static_cast<std::uint64_t>(kP) * kSteps * kBlocksPerStep;

std::set<BlockId> expected_ids() {
  std::set<BlockId> ids;
  for (int s = 0; s < kSteps; ++s)
    for (int p = 0; p < kP; ++p)
      for (int b = 0; b < kBlocksPerStep; ++b) ids.insert(BlockId{s, p, b});
  return ids;
}

// Per-(consumer,producer) analyze order, for the FIFO property.
using OrderLog = std::map<std::pair<int, int>, std::vector<BlockId>>;

void expect_fifo(const OrderLog& order, const char* executor) {
  for (const auto& [key, seq] : order) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LT(seq[i - 1], seq[i])
          << executor << ": consumer " << key.first << " saw producer "
          << key.second << "'s blocks out of order: "
          << seq[i - 1].to_string() << " before " << seq[i].to_string();
    }
  }
}

// ---------------------------------------------------------- virtual time ----

struct VtOutcome {
  std::set<BlockId> analyzed;
  OrderLog order;
  std::uint64_t analyzed_count = 0;
};

VtOutcome run_virtual() {
  apps::WorkloadProfile prof;
  prof.name = "net-diff";
  prof.steps = kSteps;
  prof.bytes_per_rank_per_step = kStepBytes;
  prof.t_collision = sim::from_seconds(0.01);
  prof.t_update = sim::from_seconds(0.01);
  prof.analysis_ns_per_byte = 1.0;

  core::dsim::SimZipperConfig z;
  z.block_bytes = kBlockBytes;
  z.producer_buffer_blocks = 8;
  // Stealing legitimately reorders via the disk path (test_exec pins that
  // down); FIFO is only a contract with it off, so the differential runs
  // steal-free on both executors.
  z.enable_steal = false;

  VtOutcome out;
  z.on_analyzed = [&out](int c, const BlockHeader& h) {
    out.analyzed.insert(h.id);
    out.order[{c, h.id.producer}].push_back(h.id);
    ++out.analyzed_count;
  };
  workflow::Cluster cluster(workflow::ClusterSpec::bridges(),
                            workflow::Layout{kP, kQ, 0});
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  workflow::run_workflow(cluster, prof, &coupling);
  return out;
}

// -------------------------------------------------------------- loopback ----

struct NetOutcome {
  znet::ClientResult res;
  znet::ServerStats sstats;
  // Keyed (session, consumer, producer): sessions multiplex one daemon.
  std::map<std::tuple<std::uint64_t, int, int>, std::vector<BlockId>> order;
  std::map<std::uint64_t, std::set<BlockId>> analyzed;  // per session
};

struct NetCase {
  std::uint64_t sessions = 1;
  std::uint64_t concurrency = 1;
  std::string fault;
  std::uint64_t chaos_seed = 0;
  double horizon_s = 1.0;
  bool chaos_stall = false;
  bool enable_steal = false;
  std::uint64_t analysis_ns = 0;
  std::uint32_t steps = kSteps;
};

NetOutcome run_net(const NetCase& tc) {
  znet::ServerOptions so;
  so.chaos_stall = tc.chaos_stall;
  so.analysis_ns_per_block = tc.analysis_ns;
  NetOutcome out;
  // Single-writer: the hook runs on the server thread only, and the test
  // reads after join() — the join is the synchronization point.
  so.on_analyzed = [&out](std::uint64_t session, int c, const BlockHeader& h) {
    out.order[{session, c, h.id.producer}].push_back(h.id);
    out.analyzed[session].insert(h.id);
  };
  znet::ZipperdServer server(std::move(so));

  znet::ClientOptions co;
  co.port = server.port();
  co.sessions = tc.sessions;
  co.concurrency = tc.concurrency;
  co.spec.producers = kP;
  co.spec.consumers = kQ;
  co.spec.steps = tc.steps;
  co.spec.block_bytes = kBlockBytes;
  co.spec.step_bytes = kStepBytes;
  co.spec.fault = tc.fault;
  co.spec.chaos_seed = tc.chaos_seed;
  co.spec.horizon_s = tc.horizon_s;
  co.spec.enable_steal = tc.enable_steal;

  std::thread daemon([&server] { server.run(); });
  out.res = znet::run_client_load(co);
  server.request_stop();
  daemon.join();
  out.sstats = server.stats();
  return out;
}

// A raw client for malformed-wire tests: connect (blocking socket), send
// exactly `bytes`, then hard-close.
void raw_send_and_close(std::uint16_t port, const std::vector<std::byte>& bytes,
                        bool rst) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  if (rst) {
    // SO_LINGER 0: close sends RST instead of FIN — a peer reset mid-block.
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  ::close(fd);
}

znet::SessionSpec small_spec(std::uint64_t id, const fs::path& spill) {
  znet::SessionSpec spec;
  spec.session_id = id;
  spec.producers = 2;
  spec.consumers = 2;
  spec.steps = 2;
  spec.block_bytes = 4 * KiB;
  spec.step_bytes = 8 * KiB;
  spec.spill_dir = spill.string();
  return spec;
}

}  // namespace

// ------------------------------------------------------------ frame codec ----

TEST(NetFrameCodec, HelloRoundTrip) {
  znet::SessionSpec spec = small_spec(42, "/tmp/spill_rt");
  spec.fault = "2x8@0.5";
  spec.chaos_seed = 7;
  spec.route_kind = 2;
  spec.consumer_steal = true;
  spec.high_water = 0.75;
  znet::FrameDecoder dec;
  const auto wire = znet::encode_hello(spec);
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, znet::FrameType::kHello);
  const znet::SessionSpec back = znet::decode_hello(f->body);
  EXPECT_EQ(back.session_id, 42u);
  EXPECT_EQ(back.producers, 2u);
  EXPECT_EQ(back.fault, "2x8@0.5");
  EXPECT_EQ(back.route_kind, 2);
  EXPECT_TRUE(back.consumer_steal);
  EXPECT_DOUBLE_EQ(back.high_water, 0.75);
  EXPECT_EQ(back.spill_dir, "/tmp/spill_rt");
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(NetFrameCodec, MixedRoundTripWithPayloadAndSpillIds) {
  znet::WireMixed m;
  m.has_block = true;
  m.producer = 3;
  m.consumer = 1;
  m.sent_raw_ns = 123456789;
  m.block.id = BlockId{5, 3, 2};
  m.block.bytes = 100;
  m.payload.resize(100);
  for (int i = 0; i < 100; ++i) m.payload[i] = static_cast<std::byte>(i);
  BlockHeader spilled;
  spilled.id = BlockId{5, 3, 1};
  spilled.on_disk = true;
  m.ids_on_disk.push_back(spilled);

  znet::FrameDecoder dec;
  const auto wire = znet::encode_mixed(m);
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, znet::FrameType::kMixed);
  const znet::WireMixed back = znet::decode_mixed(f->body);
  EXPECT_EQ(back.block.id, m.block.id);
  EXPECT_EQ(back.payload, m.payload);
  ASSERT_EQ(back.ids_on_disk.size(), 1u);
  EXPECT_EQ(back.ids_on_disk[0].id, spilled.id);
  EXPECT_TRUE(back.ids_on_disk[0].on_disk);
  EXPECT_EQ(back.sent_raw_ns, 123456789u);
}

TEST(NetFrameCodec, SummaryRoundTrip) {
  znet::SessionSummary s;
  s.session_id = 9;
  s.ok = true;
  s.blocks_analyzed = 48;
  s.blocks_from_network = 40;
  s.blocks_from_disk = 8;
  s.latency_ns = {100, 200, 300};
  znet::FrameDecoder dec;
  const auto wire = znet::encode_summary(s);
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  const znet::SessionSummary back = znet::decode_summary(f->body);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.blocks_analyzed, 48u);
  EXPECT_EQ(back.blocks_from_disk, 8u);
  EXPECT_EQ(back.latency_ns, (std::vector<std::uint64_t>{100, 200, 300}));
}

TEST(NetFrameCodec, TruncatedHeaderWaitsForMoreBytes) {
  znet::FrameDecoder dec;
  const std::byte partial[3] = {std::byte{10}, std::byte{0}, std::byte{0}};
  dec.feed(partial, 3);
  EXPECT_FALSE(dec.next().has_value());  // 4-byte length not complete yet
  EXPECT_EQ(dec.pending_bytes(), 3u);
}

TEST(NetFrameCodec, OversizedLengthThrows) {
  znet::FrameDecoder dec;
  std::vector<std::byte> hdr(5);
  const std::uint32_t huge = znet::kMaxFrameBytes + 1;
  std::memcpy(hdr.data(), &huge, 4);
  hdr[4] = std::byte{2};
  dec.feed(hdr.data(), hdr.size());
  EXPECT_THROW(dec.next(), znet::FrameError);
}

TEST(NetFrameCodec, ZeroLengthAndUnknownTypeThrow) {
  {
    znet::FrameDecoder dec;
    const std::byte zero[5] = {};
    dec.feed(zero, 5);
    EXPECT_THROW(dec.next(), znet::FrameError);
  }
  {
    znet::FrameDecoder dec;
    std::vector<std::byte> f(5);
    const std::uint32_t len = 1;
    std::memcpy(f.data(), &len, 4);
    f[4] = std::byte{9};  // no such frame type
    dec.feed(f.data(), f.size());
    EXPECT_THROW(dec.next(), znet::FrameError);
  }
}

TEST(NetFrameCodec, SplitReadsAcrossWakeupsReassemble) {
  // Three frames, fed one byte at a time — the worst epoll fragmentation.
  std::vector<std::byte> stream;
  const auto hello = znet::encode_hello(small_spec(1, "/tmp/x"));
  znet::WireMixed m;
  m.done = true;
  m.producer = 0;
  const auto mixed = znet::encode_mixed(m);
  znet::SessionSummary s;
  s.ok = true;
  const auto summary = znet::encode_summary(s);
  stream.insert(stream.end(), hello.begin(), hello.end());
  stream.insert(stream.end(), mixed.begin(), mixed.end());
  stream.insert(stream.end(), summary.begin(), summary.end());

  znet::FrameDecoder dec;
  std::vector<znet::Frame> frames;
  for (const std::byte b : stream) {
    dec.feed(&b, 1);
    while (auto f = dec.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, znet::FrameType::kHello);
  EXPECT_EQ(frames[1].type, znet::FrameType::kMixed);
  EXPECT_EQ(frames[2].type, znet::FrameType::kSummary);
  EXPECT_TRUE(znet::decode_mixed(frames[1].body).done);
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(NetFrameCodec, TruncatedBodyAndTrailingBytesThrow) {
  const auto wire = znet::encode_hello(small_spec(1, "/tmp/x"));
  // Body cut short: drop the last byte of the hello body.
  {
    std::vector<std::byte> body(wire.begin() + 5, wire.end() - 1);
    EXPECT_THROW(znet::decode_hello(body), znet::FrameError);
  }
  // Trailing garbage after a well-formed body.
  {
    std::vector<std::byte> body(wire.begin() + 5, wire.end());
    body.push_back(std::byte{0xAA});
    EXPECT_THROW(znet::decode_hello(body), znet::FrameError);
  }
}

TEST(NetFrameCodec, CorruptPayloadFailsChecksum) {
  znet::WireMixed m;
  m.has_block = true;
  m.block.id = BlockId{0, 0, 0};
  m.block.bytes = 64;
  m.payload.assign(64, std::byte{0x5A});
  auto wire = znet::encode_mixed(m);
  wire[wire.size() - 1] ^= std::byte{0xFF};  // flip a payload bit on the wire
  znet::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(znet::decode_mixed(f->body), znet::FrameError);
}

// -------------------------------------------------- epoll executor contract --

TEST(EpollExecutor, TimersFireInDeadlineOrder) {
  exec::EpollExecutor ex;
  std::vector<int> order;
  auto sleeper = [&](int tag, sim::Time d) -> sim::Task {
    co_await ex.sleep_until(ex.now() + d);
    order.push_back(tag);
  };
  ex.spawn(sleeper(3, 6 * sim::kMillisecond));
  ex.spawn(sleeper(1, 1 * sim::kMillisecond));
  ex.spawn(sleeper(2, 3 * sim::kMillisecond));
  ex.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EpollExecutor, ChannelBackpressuresAndCloseWakes) {
  exec::EpollExecutor ex;
  exec::EpChannel<int> ch(ex, 1);
  std::vector<int> got;
  bool second_send_parked = false;
  auto producer = [&]() -> sim::Task {
    co_await ch.send(1);
    second_send_parked = true;  // runs before the parked send resumes
    co_await ch.send(2);        // parks: capacity 1, no receiver yet
    second_send_parked = false;
    ch.close();
  };
  auto consumer = [&]() -> sim::Task {
    co_await ex.sleep_until(ex.now() + sim::kMillisecond);
    EXPECT_TRUE(second_send_parked);
    while (auto v = co_await ch.recv()) got.push_back(*v);
  };
  ex.spawn(producer());
  ex.spawn(consumer());
  ex.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(EpollExecutor, LatchReleasesAllWaiters) {
  exec::EpollExecutor ex;
  exec::EpLatch latch(ex, 2);
  int released = 0;
  auto waiter = [&]() -> sim::Task {
    co_await latch.wait();
    ++released;
  };
  auto counter = [&]() -> sim::Task {
    co_await ex.yield();
    latch.count_down();
    co_await ex.yield();
    latch.count_down();
  };
  ex.spawn(waiter());
  ex.spawn(waiter());
  ex.spawn(counter());
  ex.run();
  EXPECT_EQ(released, 2);
}

TEST(EpollExecutor, DeadlockedLoopThrowsInsteadOfHanging) {
  exec::EpollExecutor ex;
  exec::EpChannel<int> ch(ex);
  auto stuck = [&]() -> sim::Task {
    (void)co_await ch.recv();  // nothing will ever send or close
  };
  ex.spawn(stuck());
  EXPECT_THROW(ex.run(), std::runtime_error);
}

// ------------------------------------------------------- loopback coupling --

TEST(NetService, ExactlyOnceFifoConservationDifferentialVsVirtualTime) {
  const VtOutcome vt = run_virtual();
  NetCase tc;
  tc.sessions = 2;
  tc.concurrency = 2;
  const NetOutcome nt = run_net(tc);

  // Virtual-time side of the differential.
  const std::set<BlockId> expected = expected_ids();
  EXPECT_EQ(vt.analyzed, expected);
  EXPECT_EQ(vt.analyzed_count, kExpectedBlocks) << "VT: exactly once";
  expect_fifo(vt.order, "virtual-time");

  // Real-socket side: same invariants, per multiplexed session.
  ASSERT_EQ(nt.res.sessions_ok, 2u) << (nt.res.errors.empty()
                                            ? "no error detail"
                                            : nt.res.errors.front());
  EXPECT_EQ(nt.res.sessions_failed, 0u);
  ASSERT_EQ(nt.analyzed.size(), 2u);
  for (const auto& [session, ids] : nt.analyzed) {
    EXPECT_EQ(ids, expected) << "epoll session " << session
                             << ": analyzed set differs from virtual time";
  }
  EXPECT_EQ(nt.res.blocks_analyzed, 2 * kExpectedBlocks);
  EXPECT_EQ(nt.res.blocks_from_network + nt.res.blocks_from_disk,
            nt.res.blocks_analyzed)
      << "every block arrives via exactly one of the two channels";
  OrderLog flat;
  for (const auto& [key, seq] : nt.order) {
    auto& dst = flat[{static_cast<int>(std::get<0>(key)) * 100 +
                          std::get<1>(key),
                      std::get<2>(key)}];
    dst.insert(dst.end(), seq.begin(), seq.end());
  }
  expect_fifo(flat, "epoll");
  EXPECT_EQ(nt.sstats.sessions_ok, 2u);
  EXPECT_EQ(nt.sstats.blocks_analyzed, 2 * kExpectedBlocks);
}

TEST(NetService, ChaosFaultWindowsWalkTheResilienceLadder) {
  NetCase tc;
  tc.steps = 20;
  tc.fault = "3x8@0.3";
  tc.enable_steal = true;
  tc.chaos_seed = 5;
  tc.horizon_s = 0.02;  // windows open while the senders are still streaming
  tc.analysis_ns = 1'500'000;
  const NetOutcome nt = run_net(tc);
  ASSERT_EQ(nt.res.sessions_ok, 1u) << (nt.res.errors.empty()
                                            ? "no error detail"
                                            : nt.res.errors.front());
  // Exactly-once must hold through the degraded path: every block the ladder
  // pushed to the shared spill directory was fetched by the daemon's reader.
  EXPECT_EQ(nt.res.blocks_analyzed, nt.res.blocks_expected);
  EXPECT_GT(nt.res.put_retries + nt.res.blocks_spilled_slow +
                nt.res.blocks_from_disk,
            0u)
      << "fault windows never engaged the retry/degrade ladder";
}

TEST(NetService, ChaosSocketStallsKeepExactlyOnce) {
  // Real injected stalls: the daemon stops reading during fault windows, so
  // degradation comes from genuine TCP backpressure, not a modeled timeout.
  NetCase tc;
  tc.steps = 20;
  tc.fault = "2x8@0.15";
  tc.enable_steal = true;
  tc.chaos_seed = 11;
  tc.horizon_s = 0.05;
  tc.chaos_stall = true;
  tc.analysis_ns = 500'000;
  const NetOutcome nt = run_net(tc);
  ASSERT_EQ(nt.res.sessions_ok, 1u) << (nt.res.errors.empty()
                                            ? "no error detail"
                                            : nt.res.errors.front());
  EXPECT_EQ(nt.res.blocks_analyzed, nt.res.blocks_expected);
}

TEST(NetService, PeerResetMidBlockFailsOneSessionNotTheDaemon) {
  znet::ServerOptions so;
  znet::ZipperdServer server(std::move(so));
  const std::uint16_t port = server.port();
  std::thread daemon([&server] { server.run(); });

  // A session that dies mid-frame: valid hello, then the first 12 bytes of a
  // mixed frame, then RST.
  {
    znet::WireMixed m;
    m.has_block = true;
    m.block.id = BlockId{0, 0, 0};
    m.block.bytes = 4 * KiB;
    m.payload.assign(4 * KiB, std::byte{0x11});
    const auto mixed = znet::encode_mixed(m);
    auto bytes = znet::encode_hello(small_spec(77, "/tmp/zipper_reset_spill"));
    bytes.insert(bytes.end(), mixed.begin(), mixed.begin() + 12);
    raw_send_and_close(port, bytes, /*rst=*/true);
  }
  // A stray connection that is not even speaking the protocol.
  {
    std::vector<std::byte> garbage(64, std::byte{0x42});
    raw_send_and_close(port, garbage, /*rst=*/false);
  }

  // The daemon must still serve a full session afterwards.
  znet::ClientOptions co;
  co.port = port;
  co.spec.producers = 2;
  co.spec.consumers = 2;
  co.spec.steps = 2;
  co.spec.block_bytes = 16 * KiB;
  co.spec.step_bytes = 64 * KiB;
  const znet::ClientResult res = znet::run_client_load(co);
  EXPECT_EQ(res.sessions_ok, 1u) << (res.errors.empty()
                                         ? "no error detail"
                                         : res.errors.front());
  EXPECT_EQ(res.blocks_analyzed, res.blocks_expected);

  server.request_stop();
  daemon.join();
  EXPECT_EQ(server.stats().sessions_ok, 1u);
  EXPECT_EQ(server.stats().sessions_failed, 2u)
      << "both malformed sessions recorded as failed, daemon kept serving";
}

TEST(NetService, StopDrainsIdleConnectionsPromptly) {
  znet::ZipperdServer server(znet::ServerOptions{});
  std::thread daemon([&server] { server.run(); });
  // An idle connection that never sends a hello must not wedge shutdown.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  server.request_stop();
  daemon.join();  // hangs here (until the CI timeout) if drain is broken
  ::close(fd);
  SUCCEED();
}
