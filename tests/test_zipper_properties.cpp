// Property-style sweeps over the simulated Zipper runtime: for every corner
// of the configuration space (block size x buffer capacity x steal x preserve
// x P/Q shape), the runtime must conserve blocks and bytes across the two
// channels, analyze everything exactly once, respect the pipeline model's
// lower bounds, and terminate.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/profiles.hpp"
#include "common/units.hpp"
#include "workflow/runner.hpp"
#include "workflow/zipper_coupling.hpp"

using namespace zipper;
using common::KiB;
using common::MiB;
using workflow::Cluster;
using workflow::ClusterSpec;
using workflow::Layout;

namespace {

struct SweepCase {
  std::uint64_t block_bytes;
  int buffer_blocks;
  bool steal;
  bool preserve;
  int producers;
  int consumers;
};

apps::WorkloadProfile sweep_profile() {
  apps::WorkloadProfile p;
  p.name = "sweep";
  p.steps = 6;
  p.bytes_per_rank_per_step = 3 * MiB + 256 * KiB;  // deliberately non-divisible
  p.t_collision = sim::from_seconds(0.03);
  p.t_update = sim::from_seconds(0.02);
  p.analysis_ns_per_byte = 4.0;
  return p;
}

struct RunOutcome {
  workflow::RunResult result;
  core::dsim::SimZipperStats stats;
  std::uint64_t pfs_bytes_written;
};

RunOutcome run_case(const SweepCase& sc) {
  const auto prof = sweep_profile();
  core::dsim::SimZipperConfig z;
  z.block_bytes = sc.block_bytes;
  z.producer_buffer_blocks = sc.buffer_blocks;
  z.enable_steal = sc.steal;
  z.preserve = sc.preserve;
  z.sender_bandwidth = 150e6;
  Layout layout{sc.producers, sc.consumers, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  RunOutcome out;
  out.result = workflow::run_workflow(cluster, prof, &coupling);
  out.stats = coupling.stats();
  out.pfs_bytes_written = cluster.fs->total_bytes_written();
  return out;
}

}  // namespace

class ZipperSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Corners, ZipperSweep,
    ::testing::Values(
        // block size corners
        SweepCase{256 * KiB, 16, true, false, 6, 3},
        SweepCase{1 * MiB, 16, true, false, 6, 3},
        SweepCase{8 * MiB, 16, true, false, 6, 3},
        // tiny and huge buffers
        SweepCase{1 * MiB, 2, true, false, 6, 3},
        SweepCase{1 * MiB, 128, true, false, 6, 3},
        // steal off
        SweepCase{1 * MiB, 4, false, false, 6, 3},
        SweepCase{512 * KiB, 2, false, false, 6, 3},
        // preserve mode, both channels
        SweepCase{1 * MiB, 4, true, true, 6, 3},
        SweepCase{1 * MiB, 16, false, true, 6, 3},
        // rank shapes: P == Q, P >> Q, Q > P, singletons
        SweepCase{1 * MiB, 8, true, false, 4, 4},
        SweepCase{1 * MiB, 8, true, false, 12, 2},
        SweepCase{1 * MiB, 8, true, false, 2, 6},
        SweepCase{1 * MiB, 8, true, false, 1, 1},
        SweepCase{1 * MiB, 8, true, false, 7, 3}),
    [](const auto& info) {
      const auto& c = info.param;
      return "b" + std::to_string(c.block_bytes / KiB) + "k_cap" +
             std::to_string(c.buffer_blocks) + (c.steal ? "_steal" : "_nosteal") +
             (c.preserve ? "_preserve" : "") + "_P" + std::to_string(c.producers) +
             "Q" + std::to_string(c.consumers);
    });

TEST_P(ZipperSweep, EveryBlockProducedAndAnalyzedExactlyOnce) {
  const auto& sc = GetParam();
  const auto prof = sweep_profile();
  const auto out = run_case(sc);
  const std::uint64_t blocks_per_step =
      (prof.bytes_per_rank_per_step + sc.block_bytes - 1) / sc.block_bytes;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(sc.producers) * prof.steps * blocks_per_step;
  EXPECT_EQ(out.stats.blocks_total, expected);
  EXPECT_EQ(out.stats.blocks_analyzed, expected)
      << "dataflow must deliver every block exactly once";
}

TEST_P(ZipperSweep, BytesConservedAcrossChannels) {
  const auto& sc = GetParam();
  const auto prof = sweep_profile();
  const auto out = run_case(sc);
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(sc.producers) *
                                    prof.steps * prof.bytes_per_rank_per_step;
  EXPECT_EQ(out.stats.bytes_via_network + out.stats.bytes_via_pfs, total_bytes)
      << "network + file channels must carry exactly the produced bytes";
  if (!sc.steal) {
    EXPECT_EQ(out.stats.bytes_via_pfs, 0u);
    EXPECT_EQ(out.stats.blocks_stolen, 0u);
  }
}

TEST_P(ZipperSweep, PreserveModePersistsAllBytes) {
  const auto& sc = GetParam();
  if (!sc.preserve) return;
  const auto prof = sweep_profile();
  const auto out = run_case(sc);
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(sc.producers) *
                                    prof.steps * prof.bytes_per_rank_per_step;
  // Every byte hits the PFS exactly once: spilled blocks already live there,
  // network blocks go through the output thread.
  EXPECT_GE(out.pfs_bytes_written, total_bytes);
}

TEST_P(ZipperSweep, EndToEndRespectsModelLowerBounds) {
  const auto& sc = GetParam();
  const auto prof = sweep_profile();
  const auto out = run_case(sc);
  // Lower bound 1: pure compute.
  const double compute_s =
      prof.steps * sim::to_seconds(prof.compute_per_step()) * (1 - prof.compute_jitter);
  EXPECT_GE(out.result.end_to_end_s, compute_s);
  // Lower bound 2: per-consumer analysis of its share of the bytes.
  const double analysis_s =
      sim::to_seconds(prof.analysis_time(prof.bytes_per_rank_per_step)) *
      prof.steps * sc.producers / sc.consumers;
  EXPECT_GE(out.result.end_to_end_s, analysis_s * 0.99);
  // Sanity upper bound: fully serialized execution.
  const double serial_s = compute_s + analysis_s +
                          sc.producers * prof.steps *
                              static_cast<double>(prof.bytes_per_rank_per_step) / 150e6;
  EXPECT_LE(out.result.end_to_end_s, serial_s * 1.5);
}

TEST_P(ZipperSweep, StallOnlyWithBoundedBufferPressure) {
  const auto& sc = GetParam();
  const auto out = run_case(sc);
  if (sc.buffer_blocks >= 128) {
    // A buffer this deep never fills at these rates: no stall.
    EXPECT_EQ(out.stats.producer_stall, 0);
  }
  if (out.stats.blocks_stolen > 0) {
    // Stealing requires pressure above the threshold, which implies the
    // buffer was at least half full at some point; stolen blocks must have
    // been written to the PFS.
    EXPECT_GT(out.stats.bytes_via_pfs, 0u);
  }
}

TEST_P(ZipperSweep, DeterministicReplay) {
  const auto& sc = GetParam();
  const auto a = run_case(sc);
  const auto b = run_case(sc);
  EXPECT_EQ(a.result.end_to_end_s, b.result.end_to_end_s);
  EXPECT_EQ(a.stats.blocks_stolen, b.stats.blocks_stolen);
  EXPECT_EQ(a.stats.bytes_via_network, b.stats.bytes_via_network);
}

// ------------------------------------------------------ failure injection --

TEST(ZipperFault, CrawlingConsumerDoesNotDeadlockProducers) {
  // Analysis 100x slower than production: the dual channel must keep the
  // producers moving (bounded stall via spill), and everything still
  // completes.
  auto prof = sweep_profile();
  prof.analysis_ns_per_byte = 400.0;
  core::dsim::SimZipperConfig z;
  z.block_bytes = MiB;
  z.producer_buffer_blocks = 4;
  Layout layout{4, 2, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  const auto r = workflow::run_workflow(cluster, prof, &coupling);
  EXPECT_EQ(coupling.stats().blocks_analyzed, coupling.stats().blocks_total);
  // Producers finish long before the crawling analysis drains.
  EXPECT_LT(r.producers_done_s, r.end_to_end_s);
}

TEST(ZipperFault, GlacialPfsStillCompletesWithStealOn) {
  // A nearly-dead file system makes the steal channel worthless but must
  // never wedge the pipeline.
  auto prof = sweep_profile();
  core::dsim::SimZipperConfig z;
  z.block_bytes = MiB;
  z.producer_buffer_blocks = 4;
  z.writer_bandwidth = 1e6;  // 1 MB/s spill packing
  auto spec = ClusterSpec::bridges();
  spec.pfs.num_osts = 2;
  spec.pfs.ost_bandwidth = 2e6;
  Layout layout{4, 2, 0};
  Cluster cluster(spec, layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  const auto r = workflow::run_workflow(cluster, prof, &coupling);
  EXPECT_EQ(coupling.stats().blocks_analyzed, coupling.stats().blocks_total);
  EXPECT_GT(r.end_to_end_s, 0.0);
}

TEST(ZipperFault, SingleConsumerManyProducers) {
  auto prof = sweep_profile();
  core::dsim::SimZipperConfig z;
  z.block_bytes = MiB;
  Layout layout{16, 1, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  workflow::run_workflow(cluster, prof, &coupling);
  EXPECT_EQ(coupling.stats().blocks_analyzed, coupling.stats().blocks_total);
}
