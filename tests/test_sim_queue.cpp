// Determinism edge cases of the two-tier bucketed event queue: same-timestamp
// FIFO ordering across bucket boundaries and across the ring/heap split,
// run_until() leaving post-deadline events queued in both tiers, and the
// Channel close() contract for parked senders (deadlock regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/latch.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

using namespace zipper::sim;

namespace {

constexpr Time kRing = static_cast<Time>(BucketQueue::kRingSize);

Task record_at(Simulation& sim, Time t, std::vector<std::pair<Time, int>>& log,
               int id) {
  co_await sim.delay(t);
  log.emplace_back(sim.now(), id);
}

}  // namespace

// Events scheduled for the same timestamp from both tiers must fire in
// scheduling order: the far-horizon (heap) batch was scheduled first and must
// precede the near-horizon (ring) batch scheduled later for the same time.
TEST(BucketQueue, SameTimestampFifoAcrossTiers) {
  Simulation sim;
  std::vector<std::pair<Time, int>> log;
  const Time target = 2 * kRing + 100;
  // Scheduled at time 0 for `target`: beyond the ring horizon -> overflow heap.
  for (int i = 0; i < 4; ++i) sim.spawn(record_at(sim, target, log, i));
  // Wake shortly before `target` and schedule more events for the *same*
  // timestamp: now within the horizon -> ring buckets.
  sim.spawn([](Simulation& s, std::vector<std::pair<Time, int>>& l,
               Time tgt) -> Task {
    co_await s.delay(tgt - 50);
    for (int i = 4; i < 8; ++i) s.spawn(record_at(s, 50, l, i));
  }(sim, log, target));
  sim.run();
  ASSERT_EQ(log.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)], (std::pair{target, i}));
  }
}

// Timestamps straddling ring-wrap boundaries (multiples of kRingSize) must
// still fire in global (time, schedule-order) order even when spawned
// scrambled.
TEST(BucketQueue, TimeOrderAcrossBucketBoundaries) {
  Simulation sim;
  std::vector<std::pair<Time, int>> log;
  std::vector<std::pair<Time, int>> expected;
  const Time times[] = {kRing - 2, kRing - 1, kRing,     kRing + 1,
                        kRing / 2, 1,         kRing - 2, kRing + 1,
                        3 * kRing, 2 * kRing, kRing - 1, 0};
  int id = 0;
  for (Time t : times) {
    sim.spawn(record_at(sim, t, log, id));
    expected.emplace_back(t, id);
    ++id;
  }
  // Ties break in schedule order => stable sort by time gives the contract.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  EXPECT_EQ(log, expected);
}

// run_until() must leave post-deadline events queued — in whichever tier they
// live — and a later run() must dispatch them with unchanged order and an
// exact events_dispatched count.
TEST(BucketQueue, RunUntilParksBothTiersAndResumes) {
  Simulation sim;
  std::vector<std::pair<Time, int>> log;
  sim.spawn(record_at(sim, 100, log, 0));              // ring
  sim.spawn(record_at(sim, kRing + 500, log, 1));      // heap at schedule time
  sim.spawn(record_at(sim, 4 * kRing, log, 2));        // deep heap
  sim.spawn(record_at(sim, 4 * kRing, log, 3));        // same-t heap FIFO
  const Time deadline = kRing + 500;
  EXPECT_EQ(sim.run_until(deadline), deadline);
  EXPECT_EQ(log, (std::vector<std::pair<Time, int>>{{100, 0}, {kRing + 500, 1}}));
  EXPECT_EQ(sim.events_dispatched(), 6u);  // 4 spawns + 2 fired delays
  EXPECT_EQ(sim.events_queued(), 2u);
  EXPECT_EQ(sim.unfinished_processes(), 2u);

  EXPECT_EQ(sim.run(), 4 * kRing);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], (std::pair{4 * kRing, 2}));
  EXPECT_EQ(log[3], (std::pair{4 * kRing, 3}));
  EXPECT_EQ(sim.events_dispatched(), 8u);
  EXPECT_EQ(sim.unfinished_processes(), 0u);
}

// A deadline landing between queued events must not dispatch anything and
// must advance the clock only on drain (mirrors the documented contract).
TEST(BucketQueue, RunUntilBetweenEventsDispatchesNothing) {
  Simulation sim;
  std::vector<std::pair<Time, int>> log;
  sim.spawn(record_at(sim, 3 * kRing, log, 0));
  sim.run_until(0);  // dispatches only the spawn event at t=0
  EXPECT_TRUE(log.empty());
  sim.run_until(kRing);  // between spawn and the delayed event: no dispatch
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(sim.events_queued(), 1u);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], (std::pair{3 * kRing, 0}));
}

// Batch heap->ring promotion: dense equal-timestamp runs deep in the far
// horizon must drain in exact schedule order even when near-horizon events
// are interleaved at the same timestamps after the batch was promoted
// (heap-scheduled events precede ring-scheduled ones at equal t).
TEST(BucketQueue, BatchPromotionKeepsFifoUnderLoad) {
  Simulation sim;
  std::vector<std::pair<Time, int>> log;
  std::vector<std::pair<Time, int>> expected;
  int id = 0;
  // 40 far-horizon timestamps x 8 same-t events each: all land in the
  // overflow heap, then promote to the ring in batches as time advances.
  for (int k = 0; k < 40; ++k) {
    const Time t = 2 * kRing + 64 * k;
    for (int j = 0; j < 8; ++j) {
      sim.spawn(record_at(sim, t, log, id));
      expected.emplace_back(t, id);
      ++id;
    }
  }
  // Late near-horizon arrivals at a subset of the same timestamps: they were
  // scheduled after the heap batch, so they must fire after it.
  for (int k = 0; k < 40; k += 5) {
    const Time t = 2 * kRing + 64 * k;
    sim.spawn([](Simulation& s, std::vector<std::pair<Time, int>>& l, Time tgt,
                 int i) -> Task {
      co_await s.delay(tgt - 10);
      s.spawn(record_at(s, 10, l, i));
    }(sim, log, t, id));
    expected.emplace_back(t, id);
    ++id;
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  EXPECT_EQ(log, expected);
}

// Two identical mixed-tier universes must dispatch identical event orders.
TEST(BucketQueue, MixedTierDeterminismAcrossRuns) {
  auto run_once = []() {
    Simulation sim;
    std::vector<std::pair<Time, int>> log;
    for (int i = 0; i < 300; ++i) {
      sim.spawn(record_at(sim, (i * 1237) % (5 * kRing), log, i));
    }
    sim.run();
    return std::pair{sim.events_dispatched(), log};
  };
  auto [c1, l1] = run_once();
  auto [c2, l2] = run_once();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(l1, l2);
}

// Latch::count_down wakes a large waiter set via one list splice; wake order
// must be FIFO park order.
TEST(BucketQueue, LatchSpliceWakesInParkOrder) {
  Simulation sim;
  Latch latch(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    sim.spawn([](Latch& l, std::vector<int>& ord, int id) -> Task {
      co_await l.wait();
      ord.push_back(id);
    }(latch, order, i));
  }
  sim.spawn([](Simulation& s, Latch& l) -> Task {
    co_await s.delay(10);
    l.count_down();
  }(sim, latch));
  sim.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------- Channel close/senders --

// Regression: close() on a bounded, full channel used to wake only parked
// receivers, leaving parked senders suspended forever. They must now resume
// with their send reporting failure.
TEST(ChannelClose, WakesParkedSendersOnBoundedFullChannel) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  int failed_sends = 0, ok_sends = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Channel<int>& c, int& fails, int& oks) -> Task {
      const bool delivered = co_await c.send(7);
      (delivered ? oks : fails) += 1;
    }(ch, failed_sends, ok_sends));
  }
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task {
    co_await s.delay(100);
    c.close();
  }(sim, ch));
  sim.run();
  // First send buffers (capacity 1); the two parked senders fail on close.
  EXPECT_EQ(ok_sends, 1);
  EXPECT_EQ(failed_sends, 2);
  EXPECT_EQ(sim.unfinished_processes(), 0u);  // the deadlock regression check
  // The buffered value stays receivable after close.
  std::optional<int> got;
  sim.spawn([](Channel<int>& c, std::optional<int>& g) -> Task {
    g = co_await c.recv();
  }(ch, got));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

TEST(ChannelClose, DeliveredSendReportsTrue) {
  Simulation sim;
  Channel<int> ch(sim);
  bool delivered = false;
  sim.spawn([](Channel<int>& c, bool& d) -> Task {
    d = co_await c.send(1);
  }(ch, delivered));
  sim.spawn([](Channel<int>& c) -> Task { co_await c.recv(); }(ch));
  sim.run();
  EXPECT_TRUE(delivered);
}

// A sender parked behind backpressure that is *promoted* into a freed buffer
// slot (not closed out) must report success.
TEST(ChannelClose, PromotedSenderReportsTrue) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  std::vector<bool> results;
  sim.spawn([](Channel<int>& c, std::vector<bool>& r) -> Task {
    r.push_back(co_await c.send(1));
    r.push_back(co_await c.send(2));  // parks: buffer full
  }(ch, results));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task {
    co_await s.delay(50);
    co_await c.recv();  // frees the slot; parked sender promoted
    co_await c.recv();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(results, (std::vector<bool>{true, true}));
  EXPECT_EQ(sim.unfinished_processes(), 0u);
}
