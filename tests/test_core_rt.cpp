// Tests for the real (threaded) Zipper runtime: end-to-end delivery and
// integrity over both channels, work-stealing behaviour, Preserve mode
// durability, termination, stress.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "core/rt/runtime.hpp"
#include "trace/timeline.hpp"

namespace fs = std::filesystem;
using namespace zipper::core;
using namespace zipper::core::rt;

namespace {

struct TempDirs {
  fs::path spill, preserve;
  TempDirs() {
    const auto base = fs::temp_directory_path() /
                      ("zipper_test_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter()++));
    spill = base / "spill";
    preserve = base / "preserve";
    fs::create_directories(spill);
    fs::create_directories(preserve);
  }
  ~TempDirs() {
    std::error_code ec;
    fs::remove_all(spill.parent_path(), ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

std::vector<std::byte> make_payload(std::uint64_t seed, std::size_t n) {
  std::vector<std::byte> out(n);
  zipper::common::Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

Config base_config(const TempDirs& dirs) {
  Config cfg;
  cfg.spill_dir = dirs.spill;
  cfg.preserve_dir = dirs.preserve;
  cfg.producer_buffer_blocks = 8;
  cfg.high_water = 0.5;
  return cfg;
}

}  // namespace

TEST(RtRuntime, SingleBlockRoundTrip) {
  TempDirs dirs;
  Runtime rt(1, 1, base_config(dirs));
  const auto payload = make_payload(1, 4096);
  rt.producer(0).write(BlockId{0, 0, 0}, payload);
  rt.producer(0).finish();
  auto block = rt.consumer(0).read();
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->header.id, (BlockId{0, 0, 0}));
  EXPECT_EQ(block->payload, payload);
  EXPECT_EQ(rt.consumer(0).read(), nullptr);  // end of stream
}

TEST(RtRuntime, PayloadIntegrityManyBlocks) {
  TempDirs dirs;
  Runtime rt(1, 1, base_config(dirs));
  std::map<BlockId, std::uint64_t> checksums;
  for (int s = 0; s < 5; ++s) {
    for (int b = 0; b < 10; ++b) {
      const BlockId id{s, 0, b};
      auto payload = make_payload(static_cast<std::uint64_t>(s * 100 + b), 8192);
      checksums[id] = zipper::common::fnv1a(payload);
      rt.producer(0).write(id, payload);
    }
  }
  rt.producer(0).finish();
  int received = 0;
  while (auto block = rt.consumer(0).read()) {
    ASSERT_TRUE(checksums.contains(block->header.id));
    EXPECT_EQ(zipper::common::fnv1a(block->payload), checksums[block->header.id])
        << "corrupt payload for " << block->header.id.to_string();
    ++received;
  }
  EXPECT_EQ(received, 50);
}

TEST(RtRuntime, EveryBlockDeliveredExactlyOnceMultiProducerMultiConsumer) {
  TempDirs dirs;
  const int P = 4, Q = 2, steps = 6, blocks = 8;
  Runtime rt(P, Q, base_config(dirs));

  std::vector<std::thread> producers;
  for (int p = 0; p < P; ++p) {
    producers.emplace_back([&, p] {
      auto payload = make_payload(static_cast<std::uint64_t>(p), 2048);
      for (int s = 0; s < steps; ++s) {
        for (int b = 0; b < blocks; ++b) {
          rt.producer(p).write(BlockId{s, p, b}, payload);
        }
      }
      rt.producer(p).finish();
    });
  }

  std::mutex m;
  std::map<std::string, int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < Q; ++c) {
    consumers.emplace_back([&, c] {
      while (auto block = rt.consumer(c).read()) {
        std::lock_guard lk(m);
        ++seen[block->header.id.to_string()];
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(seen.size(), static_cast<std::size_t>(P * steps * blocks));
  for (const auto& [id, n] : seen) EXPECT_EQ(n, 1) << id << " delivered " << n << "x";
}

TEST(RtRuntime, StealActivatesUnderBackpressure) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.producer_buffer_blocks = 4;
  cfg.high_water = 0.5;
  cfg.network_bandwidth = 2e6;  // 2 MB/s: sender is deliberately slow
  Runtime rt(1, 1, cfg);

  const auto payload = make_payload(7, 64 * 1024);
  std::thread consumer([&] {
    while (rt.consumer(0).read()) {
    }
  });
  for (int b = 0; b < 40; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
  rt.producer(0).finish();
  consumer.join();

  const auto ps = rt.producer(0).stats();
  EXPECT_EQ(ps.blocks_written, 40u);
  EXPECT_GT(ps.blocks_stolen, 0u) << "writer thread never stole despite backpressure";
  EXPECT_EQ(ps.blocks_sent + ps.blocks_stolen, 40u);
  const auto cs = rt.consumer(0).stats();
  EXPECT_EQ(cs.blocks_from_disk, ps.blocks_stolen);
  EXPECT_EQ(cs.blocks_read, 40u);
}

TEST(RtRuntime, StealDisabledSendsEverythingViaNetwork) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.enable_steal = false;
  cfg.network_bandwidth = 5e6;
  Runtime rt(1, 1, cfg);
  const auto payload = make_payload(3, 32 * 1024);
  std::thread consumer([&] {
    while (rt.consumer(0).read()) {
    }
  });
  for (int b = 0; b < 20; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
  rt.producer(0).finish();
  consumer.join();
  EXPECT_EQ(rt.producer(0).stats().blocks_stolen, 0u);
  EXPECT_EQ(rt.producer(0).stats().blocks_sent, 20u);
}

TEST(RtRuntime, DualChannelReducesProducerStall) {
  // The paper's headline producer-side effect: with a slow network and a
  // bounded buffer, enabling the writer thread must cut write() stall time.
  auto run = [](bool steal) {
    TempDirs dirs;
    Config cfg;
    cfg.spill_dir = dirs.spill;
    cfg.producer_buffer_blocks = 4;
    cfg.high_water = 0.5;
    cfg.enable_steal = steal;
    cfg.network_bandwidth = 4e6;
    Runtime rt(1, 1, cfg);
    std::thread consumer([&] {
      while (rt.consumer(0).read()) {
      }
    });
    const auto payload = make_payload(11, 64 * 1024);
    for (int b = 0; b < 32; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
    const auto stall = rt.producer(0).stats().stall_ns;
    rt.producer(0).finish();
    consumer.join();
    return stall;
  };
  const auto stall_without = run(false);
  const auto stall_with = run(true);
  EXPECT_LT(static_cast<double>(stall_with),
            0.8 * static_cast<double>(stall_without))
      << "work stealing failed to reduce producer stall ("
      << stall_with / 1e6 << "ms vs " << stall_without / 1e6 << "ms)";
}

TEST(RtRuntime, PreserveModePersistsEveryBlock) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.mode = Mode::kPreserve;
  cfg.network_bandwidth = 8e6;  // force some blocks over both channels
  cfg.producer_buffer_blocks = 4;
  const int total = 24;
  {
    Runtime rt(1, 1, cfg);
    std::thread consumer([&] {
      while (rt.consumer(0).read()) {
      }
    });
    const auto payload = make_payload(5, 32 * 1024);
    for (int b = 0; b < total; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
    rt.producer(0).finish();
    consumer.join();
    rt.wait_idle();
    EXPECT_EQ(rt.consumer(0).stats().blocks_preserved, static_cast<std::uint64_t>(total));
  }
  // Every block must exist in the preserve dir, with full payload.
  int files = 0;
  for (const auto& e : fs::directory_iterator(dirs.preserve)) {
    EXPECT_EQ(fs::file_size(e.path()), 32u * 1024u);
    ++files;
  }
  EXPECT_EQ(files, total);
}

TEST(RtRuntime, NoPreserveLeavesNoSpillFilesBehind) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.network_bandwidth = 4e6;
  cfg.producer_buffer_blocks = 4;
  {
    Runtime rt(1, 1, cfg);
    std::thread consumer([&] {
      while (rt.consumer(0).read()) {
      }
    });
    const auto payload = make_payload(9, 64 * 1024);
    for (int b = 0; b < 24; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
    rt.producer(0).finish();
    consumer.join();
    EXPECT_GT(rt.producer(0).stats().blocks_stolen, 0u);  // spill happened
  }
  EXPECT_TRUE(fs::is_empty(dirs.spill)) << "spill files leaked in No-Preserve mode";
}

TEST(RtRuntime, BlockMetadataSurvivesBothChannels) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.network_bandwidth = 4e6;
  cfg.producer_buffer_blocks = 4;
  Runtime rt(1, 1, cfg);
  std::thread producer([&] {
    const auto payload = make_payload(2, 16 * 1024);
    for (int b = 0; b < 16; ++b) {
      rt.producer(0).write(BlockId{7, 0, b}, payload, /*offset=*/b * 16384ull);
    }
    rt.producer(0).finish();
  });
  std::map<int, std::uint64_t> offsets;
  while (auto block = rt.consumer(0).read()) {
    EXPECT_EQ(block->header.id.step, 7);
    offsets[block->header.id.index] = block->header.offset;
  }
  producer.join();
  ASSERT_EQ(offsets.size(), 16u);
  for (int b = 0; b < 16; ++b) EXPECT_EQ(offsets[b], b * 16384ull);
}

TEST(RtRuntime, DestructorHandlesAbandonedConsumers) {
  // A consumer that never reads must not deadlock the destructor.
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.consumer_buffer_blocks = 2;
  cfg.net_channel_blocks = 2;
  Runtime rt(1, 1, cfg);
  const auto payload = make_payload(4, 1024);
  for (int b = 0; b < 4; ++b) rt.producer(0).write(BlockId{0, 0, b}, payload);
  // No finish(), no reads: destructor must shut everything down cleanly.
}

TEST(RtRuntime, StressRandomSizesManyThreads) {
  TempDirs dirs;
  Config cfg = base_config(dirs);
  cfg.producer_buffer_blocks = 6;
  cfg.network_bandwidth = 50e6;
  const int P = 6, Q = 3;
  Runtime rt(P, Q, cfg);

  std::atomic<std::uint64_t> bytes_written{0}, bytes_read{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      zipper::common::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 99);
      for (int s = 0; s < 8; ++s) {
        for (int b = 0; b < 6; ++b) {
          const std::size_t n = 512 + rng.below(32 * 1024);
          auto payload = make_payload(rng(), n);
          bytes_written += n;
          rt.producer(p).write(BlockId{s, p, b}, payload);
        }
      }
      rt.producer(p).finish();
    });
  }
  for (int c = 0; c < Q; ++c) {
    threads.emplace_back([&, c] {
      while (auto block = rt.consumer(c).read()) {
        bytes_read += block->payload.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bytes_read.load(), bytes_written.load());
}

TEST(RtRuntime, RealSpansGiveThreadedRunsPerSpanNesting) {
  // The unified body records genuine [t0, t1] spans on the threaded
  // executor's monotonic clock — not one synthetic counter-derived span per
  // rank anchored at t = 0. Producers trace on ranks 0..P-1, consumers on
  // P..P+Q-1, the same layout the DES workflow uses.
  TempDirs dirs;
  auto cfg = base_config(dirs);
  cfg.producer_buffer_blocks = 2;  // tiny buffer: force stall + steal
  cfg.network_bandwidth = 4e6;     // slow network: blocks take both channels
  zipper::trace::Recorder rec;
  cfg.recorder = &rec;
  const int P = 2, Q = 1;
  Runtime rt(P, Q, cfg);

  std::vector<std::thread> threads;
  for (int p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      for (int b = 0; b < 16; ++b) {
        rt.producer(p).write(BlockId{0, p, b}, make_payload(7, 64 * 1024));
      }
      rt.producer(p).finish();
    });
  }
  std::uint64_t read_blocks = 0;
  threads.emplace_back([&] {
    while (auto block = rt.consumer(0).read()) ++read_blocks;
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(read_blocks, 32u);

  using zipper::trace::Cat;
  // Per-span granularity: every network send is its own kTransfer span on
  // the producer's rank, every spill fetch its own kRead span on the
  // consumer's — span *counts* match the per-endpoint counters one-to-one.
  std::uint64_t sent = 0, fetched = 0;
  std::map<std::pair<std::int32_t, Cat>, std::uint64_t> span_count;
  for (const auto& s : rec.spans()) {
    EXPECT_GT(s.t1, s.t0);
    ++span_count[{s.rank, s.cat}];
  }
  for (int p = 0; p < P; ++p) sent += rt.producer(p).stats().blocks_sent;
  fetched = rt.consumer(0).stats().blocks_from_disk;
  EXPECT_GT(fetched, 0u) << "network never throttled; steal path untested";
  const std::uint64_t transfer_spans =
      span_count[std::pair<std::int32_t, Cat>{0, Cat::kTransfer}] +
      span_count[std::pair<std::int32_t, Cat>{1, Cat::kTransfer}];
  const std::uint64_t read_spans =
      span_count[std::pair<std::int32_t, Cat>{P, Cat::kRead}];
  EXPECT_EQ(transfer_spans, sent);
  EXPECT_EQ(read_spans, fetched);

  // Stall span totals equal the stall counters exactly: both sides of the
  // unified stats are derived from the same timed wait.
  for (int p = 0; p < P; ++p) {
    EXPECT_EQ(static_cast<std::uint64_t>(rec.total(Cat::kStall, p)),
              rt.producer(p).stats().stall_ns);
  }

  // True nesting along a real time axis: spans on one producer rank start at
  // distinct times (synthetic spans all began at t = 0), and the analyzer
  // decomposes them per category like any DES trace.
  std::set<zipper::sim::Time> starts;
  for (const auto& s : rec.spans()) {
    if (s.rank == 0) starts.insert(s.t0);
  }
  EXPECT_GT(starts.size(), 1u) << "spans collapsed onto one synthetic anchor";

  const auto attr = zipper::trace::analyze(rec);
  ASSERT_FALSE(attr.ranks.empty());
  EXPECT_GT(attr.t_end, 0);
  std::uint64_t ranks_seen = 0;
  for (const auto& ra : attr.ranks) {
    ranks_seen |= 1ull << ra.rank;
    EXPECT_GT(ra.busy, 0);
  }
  // Producer and consumer ranks both show up in one attribution.
  EXPECT_TRUE(ranks_seen & 1ull) << "producer rank 0 missing from trace";
  EXPECT_TRUE(ranks_seen & (1ull << P)) << "consumer rank missing from trace";
}
