// Integration tests: full simulated workflows over the cluster model with
// the Zipper DES runtime and all seven baseline transports. Verifies the
// paper's qualitative claims at miniature scale (they must hold at any
// scale): pipeline overlap, stall behaviour, transport ordering, work
// stealing, Preserve mode, and the performance model.
#include <gtest/gtest.h>

#include <memory>

#include "apps/profiles.hpp"
#include "common/units.hpp"
#include "model/perf_model.hpp"
#include "transports/decaf.hpp"
#include "transports/factory.hpp"
#include "workflow/runner.hpp"
#include "workflow/zipper_coupling.hpp"

using namespace zipper;
using common::MiB;
using transports::Method;
using workflow::Cluster;
using workflow::ClusterSpec;
using workflow::Layout;
using workflow::RunResult;

namespace {

// A small, fast workload: 8 producers, 4 consumers, 10 steps, 4 MiB/step.
apps::WorkloadProfile small_profile() {
  apps::WorkloadProfile p;
  p.name = "test";
  p.steps = 10;
  p.bytes_per_rank_per_step = 4 * MiB;
  p.t_collision = sim::from_seconds(0.05);
  p.t_streaming = sim::from_seconds(0.01);
  p.t_update = sim::from_seconds(0.04);
  p.halo_bytes = 64 * common::KiB;
  p.halo_neighbors = 2;
  p.analysis_ns_per_byte = 5.0;
  return p;
}

core::dsim::SimZipperConfig fast_zipper() {
  core::dsim::SimZipperConfig z;
  z.block_bytes = MiB;
  z.sender_bandwidth = 400e6;  // transfer stage < compute stage
  z.writer_bandwidth = 200e6;
  return z;
}

RunResult run_method(Method m, const apps::WorkloadProfile& prof,
                     int P = 8, int Q = 4,
                     transports::TransportParams params = {},
                     core::dsim::SimZipperConfig zcfg = fast_zipper()) {
  Layout layout{P, Q, transports::servers_for(m, P)};
  Cluster cluster(ClusterSpec::bridges(), layout);
  auto coupling = transports::make_coupling(m, cluster, prof, params, zcfg);
  return workflow::run_workflow(cluster, prof, coupling.get());
}

RunResult run_sim_only(const apps::WorkloadProfile& prof, int P = 8) {
  Layout layout{P, 0, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  return workflow::run_workflow(cluster, prof, nullptr);
}

}  // namespace

TEST(Workflow, SimOnlyMatchesComputePlusHalo) {
  const auto prof = small_profile();
  const auto r = run_sim_only(prof);
  const double pure_compute = prof.steps * sim::to_seconds(prof.compute_per_step());
  EXPECT_GE(r.end_to_end_s, pure_compute);
  EXPECT_LT(r.end_to_end_s, pure_compute * 1.1) << "halo exchange cost exploded";
}

TEST(Workflow, ZipperEndToEndTracksSimOnly) {
  // The paper's headline: Zipper's end-to-end time almost equals the
  // simulation-only lower bound when simulation is the slowest stage.
  const auto prof = small_profile();
  const auto sim_only = run_sim_only(prof);
  const auto zipper = run_method(Method::kZipper, prof);
  EXPECT_GE(zipper.end_to_end_s, sim_only.end_to_end_s * 0.99);
  EXPECT_LT(zipper.end_to_end_s, sim_only.end_to_end_s * 1.25)
      << "Zipper overhead too large: " << zipper.end_to_end_s << " vs "
      << sim_only.end_to_end_s;
}

TEST(Workflow, ZipperDeliversAndAnalyzesEveryBlock) {
  const auto prof = small_profile();
  Layout layout{8, 4, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling coupling(cluster, prof, fast_zipper());
  const auto r = workflow::run_workflow(cluster, prof, &coupling);
  const auto& s = coupling.stats();
  // 8 producers x 10 steps x 4 blocks/step.
  EXPECT_EQ(s.blocks_total, 8u * 10u * 4u);
  EXPECT_EQ(s.blocks_analyzed, s.blocks_total);
  EXPECT_GT(r.end_to_end_s, 0.0);
}

TEST(Workflow, EndToEndEqualsMaxStage_TransferDominated) {
  // Throttle the sender so transfer becomes the slowest stage; Tt2s must
  // track nb/P * tm (the model), not the sum of stages.
  auto prof = small_profile();
  prof.halo_neighbors = 0;
  auto zcfg = fast_zipper();
  zcfg.sender_bandwidth = 20e6;  // 4 MiB/step at 20 MB/s = 0.21 s/step >> 0.1 s compute
  zcfg.producer_buffer_blocks = 8;
  zcfg.enable_steal = false;  // the model assumes the message path only
  const auto r = run_method(Method::kZipper, prof, 8, 4, {}, zcfg);

  model::ModelInput in;
  in.total_bytes = 8ull * 10 * prof.bytes_per_rank_per_step;
  in.block_bytes = MiB;
  in.producers = 8;
  in.consumers = 4;
  in.tc_s = sim::to_seconds(prof.compute_per_step()) / 4.0;  // per block
  in.tm_s = static_cast<double>(MiB) / 20e6;
  in.ta_s = 5.0 * MiB / 1e9;
  const auto pred = model::predict(in);
  EXPECT_EQ(pred.dominant, "transfer");
  EXPECT_NEAR(r.end_to_end_s, pred.t_end_to_end, pred.t_end_to_end * 0.2)
      << "measured end-to-end diverges from the pipeline model";
}

TEST(Workflow, StallAppearsWhenTransferSlowAndStealOff) {
  auto prof = small_profile();
  prof.halo_neighbors = 0;
  auto zcfg = fast_zipper();
  zcfg.sender_bandwidth = 20e6;
  zcfg.enable_steal = false;
  zcfg.producer_buffer_blocks = 4;
  Layout layout{8, 4, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling coupling(cluster, prof, zcfg);
  workflow::run_workflow(cluster, prof, &coupling);
  EXPECT_GT(sim::to_seconds(coupling.stats().producer_stall), 0.5)
      << "producer should stall when the buffer keeps filling";
}

TEST(Workflow, WorkStealingReducesStallAndUsesBothChannels) {
  auto prof = small_profile();
  prof.halo_neighbors = 0;
  auto base = fast_zipper();
  base.sender_bandwidth = 20e6;
  base.producer_buffer_blocks = 4;

  auto no_steal = base;
  no_steal.enable_steal = false;
  Layout layout{8, 4, 0};

  Cluster c1(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling k1(c1, prof, no_steal);
  const auto r1 = workflow::run_workflow(c1, prof, &k1);

  Cluster c2(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling k2(c2, prof, base);
  const auto r2 = workflow::run_workflow(c2, prof, &k2);

  EXPECT_GT(k2.stats().blocks_stolen, 0u);
  EXPECT_LT(sim::to_seconds(k2.stats().producer_stall),
            sim::to_seconds(k1.stats().producer_stall))
      << "stealing must reduce producer stall";
  EXPECT_LE(r2.producers_done_s, r1.producers_done_s * 1.01)
      << "stealing must not slow the producers down";
}

TEST(Workflow, StealNeverActivatesWhenComputeBound) {
  // O(n^{3/2})-like case: producer far slower than the sender; the buffer
  // stays near-empty and the concurrent method falls back to message-passing.
  auto prof = small_profile();
  prof.t_collision = sim::from_seconds(0.5);  // very slow producer
  auto zcfg = fast_zipper();
  Layout layout{4, 2, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling coupling(cluster, prof, zcfg);
  workflow::run_workflow(cluster, prof, &coupling);
  EXPECT_EQ(coupling.stats().blocks_stolen, 0u);
  EXPECT_EQ(coupling.stats().bytes_via_pfs, 0u);
}

TEST(Workflow, PreserveModeStoresAllBytes) {
  auto prof = small_profile();
  auto zcfg = fast_zipper();
  zcfg.preserve = true;
  Layout layout{4, 2, 0};
  Cluster cluster(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling coupling(cluster, prof, zcfg);
  workflow::run_workflow(cluster, prof, &coupling);
  const std::uint64_t total = 4ull * prof.steps * prof.bytes_per_rank_per_step;
  EXPECT_GE(cluster.fs->total_bytes_written(), total)
      << "Preserve mode must persist every block";
}

TEST(Workflow, NoPreserveIsNotSlowerThanPreserve) {
  auto prof = small_profile();
  auto z1 = fast_zipper();
  auto z2 = fast_zipper();
  z2.preserve = true;
  const auto r1 = run_method(Method::kZipper, prof, 4, 2, {}, z1);
  const auto r2 = run_method(Method::kZipper, prof, 4, 2, {}, z2);
  EXPECT_LE(r1.end_to_end_s, r2.end_to_end_s * 1.001);
}

// ------------------------------------------------------- baseline methods --

class AllMethods : public ::testing::TestWithParam<Method> {};

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethods,
    ::testing::Values(Method::kMpiIo, Method::kAdiosDataSpaces,
                      Method::kAdiosDimes, Method::kNativeDataSpaces,
                      Method::kNativeDimes, Method::kFlexpath, Method::kDecaf,
                      Method::kZipper),
    [](const auto& info) {
      std::string n = transports::method_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST_P(AllMethods, CompletesAndBeatsNothing) {
  const auto prof = small_profile();
  const auto sim_only = run_sim_only(prof);
  const auto r = run_method(GetParam(), prof);
  EXPECT_GT(r.end_to_end_s, 0.0);
  // No coupling can beat the simulation-only lower bound.
  EXPECT_GE(r.end_to_end_s, sim_only.end_to_end_s * 0.999)
      << transports::method_name(GetParam());
  // And every coupling must terminate in bounded time (sanity upper bound).
  EXPECT_LT(r.end_to_end_s, sim_only.end_to_end_s * 40);
}

TEST(Workflow, TransportOrderingMatchesPaper) {
  // Figure 2's qualitative ordering at miniature scale:
  //   Zipper <= Decaf (waitall interlock) <= ADIOS variants, MPI-IO worst
  //   among the file-less methods, and native beats ADIOS for both staging
  //   libraries.
  const auto prof = small_profile();
  const auto zipper = run_method(Method::kZipper, prof);
  const auto decaf = run_method(Method::kDecaf, prof);
  const auto nds = run_method(Method::kNativeDataSpaces, prof);
  const auto ads = run_method(Method::kAdiosDataSpaces, prof);
  const auto ndi = run_method(Method::kNativeDimes, prof);
  const auto adi = run_method(Method::kAdiosDimes, prof);
  const auto mpiio = run_method(Method::kMpiIo, prof);

  EXPECT_LE(zipper.end_to_end_s, decaf.end_to_end_s);
  EXPECT_LE(nds.end_to_end_s, ads.end_to_end_s * 1.001);
  EXPECT_LE(ndi.end_to_end_s, adi.end_to_end_s * 1.001);
  EXPECT_LE(ndi.end_to_end_s, nds.end_to_end_s * 1.001);  // DIMES beats DataSpaces
  EXPECT_GE(mpiio.end_to_end_s, zipper.end_to_end_s);
}

TEST(Workflow, DecafWaitallStallsProducers) {
  const auto prof = small_profile();
  const auto decaf = run_method(Method::kDecaf, prof);
  ASSERT_TRUE(decaf.metrics.contains("waitall_s"));
  EXPECT_GT(decaf.metrics.at("waitall_s"), 0.0);
}

TEST(Workflow, DecafOverflowEmulationThrowsAtScale) {
  const auto prof = small_profile();  // 4 MiB/rank/step = 524288 elements
  Layout layout{8, 4, transports::servers_for(Method::kDecaf, 8)};
  Cluster cluster(ClusterSpec::bridges(), layout);
  transports::TransportParams params;
  params.decaf_emulate_count_overflow = true;
  // 8 ranks x (4 MiB / 16 B) items is far below 2^32: fine.
  EXPECT_NO_THROW(transports::DecafCoupling(cluster, prof, params));
  // A profile large enough to overflow the 32-bit global item count:
  auto big = prof;
  big.bytes_per_rank_per_step = 16ull * common::GiB;  // 1e9 items x 8 ranks
  EXPECT_THROW(transports::DecafCoupling(cluster, big, params),
               transports::DecafCountOverflow);
}

TEST(Workflow, FlexpathSuffersFromManyRanksPerNode) {
  // Same total work, but 8 ranks packed on one node vs spread across 8 nodes:
  // the per-host socket stack must make the packed configuration slower. Use
  // a data-heavy step (little compute to hide behind) so the socket path is
  // the bottleneck, as in the paper's large-slab staging experiments.
  auto prof = small_profile();
  prof.halo_neighbors = 0;
  prof.bytes_per_rank_per_step = 16 * MiB;
  prof.t_collision = sim::from_seconds(0.02);
  prof.t_streaming = 0;
  prof.t_update = 0;
  prof.analysis_ns_per_byte = 0.5;

  auto run_packed = [&](int cores_per_node) {
    auto spec = ClusterSpec::bridges();
    spec.cores_per_node = cores_per_node;
    Layout layout{8, 4, 0};
    Cluster cluster(spec, layout);
    auto coupling =
        transports::make_coupling(Method::kFlexpath, cluster, prof, {}, {});
    return workflow::run_workflow(cluster, prof, coupling.get());
  };
  const auto packed = run_packed(28);  // all 8 producers share one node
  const auto spread = run_packed(1);   // one rank per node
  EXPECT_GT(packed.end_to_end_s, spread.end_to_end_s * 1.2)
      << "socket-stack serialization should punish rank packing";
}

TEST(Workflow, XmitWaitGrowsWithInjectionPressure) {
  // Fig 15's mechanism: a fast producer (O(n)-like) generates blocks faster
  // than the node NIC can inject them and accumulates XmitWait; a slow
  // producer (O(n^{3/2})-like) trickles blocks out with no congestion.
  auto fast = small_profile();
  fast.halo_neighbors = 0;
  fast.block_granular_compute = true;  // continuous injection
  fast.t_collision = sim::from_seconds(0.001);  // 4 GiB/s per rank demand
  fast.t_streaming = fast.t_update = 0;
  auto slow = fast;
  slow.t_collision = sim::from_seconds(2.0);  // 2 MiB/s per rank

  auto zcfg = fast_zipper();
  zcfg.sender_bandwidth = 20e9;  // sender software not the bottleneck
  zcfg.enable_steal = false;     // isolate the message path
  Layout layout{8, 4, 0};

  Cluster c1(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling k1(c1, fast, zcfg);
  workflow::run_workflow(c1, fast, &k1);

  Cluster c2(ClusterSpec::bridges(), layout);
  workflow::ZipperCoupling k2(c2, slow, zcfg);
  workflow::run_workflow(c2, slow, &k2);

  EXPECT_GT(c1.producer_xmit_wait(), 10 * std::max<std::uint64_t>(1, c2.producer_xmit_wait()))
      << "fast producers must show much higher congestion counters";
}

TEST(Workflow, DeterministicAcrossRuns) {
  const auto prof = small_profile();
  const auto a = run_method(Method::kZipper, prof);
  const auto b = run_method(Method::kZipper, prof);
  EXPECT_EQ(a.end_to_end_s, b.end_to_end_s);
  EXPECT_EQ(a.producer_xmit_wait, b.producer_xmit_wait);
}
