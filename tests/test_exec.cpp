// Differential suite over the unified execution core: the zipper application
// body (core/zipper) is one translation unit instantiated over two executors
// (core/exec), and this file pins down the contract between them. The same
// seeded workload runs on the VirtualTimeExecutor (DES facade core/dsim) and
// on the ThreadPoolExecutor (threaded facade core/rt) and must agree on the
// streaming invariants:
//
//   * exactly-once delivery — every produced block analyzed/read once;
//   * per-(producer,consumer) FIFO — with the dual channel and consumer
//     stealing disabled, blocks from one producer reach their consumer in
//     production order on both executors;
//   * conservation of blocks/bytes/spills — written == sent + stolen per
//     producer, delivered == from_network + from_disk per consumer, and the
//     spilled/sent totals match across the producer and consumer sides.
//
// Plus the unified-stats contract (one exec::RankStats for both executors,
// wait_ns populated under virtual time too) and two-run determinism of the
// sharded virtual-time path (--sim-threads 4).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "apps/profiles.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/exec/exec.hpp"
#include "core/rt/runtime.hpp"
#include "exp/artifacts.hpp"
#include "exp/scenario.hpp"
#include "workflow/runner.hpp"
#include "workflow/zipper_coupling.hpp"

namespace fs = std::filesystem;
using namespace zipper;
using common::KiB;
using core::BlockHeader;
using core::BlockId;
using core::exec::RankStats;

// --------------------------------------------------- unified stats contract --
// One struct serves both executors; this is a compile-time API contract, so
// calibration code can consume either runtime's counters field-for-field.
static_assert(std::is_same_v<core::rt::ProducerStats, RankStats>);
static_assert(std::is_same_v<core::rt::ConsumerStats, RankStats>);
static_assert(std::is_same_v<core::dsim::SimZipperStats, core::exec::AggregateStats>);

namespace {

// The shared seeded workload, identical on both executors: kP producers each
// emit kSteps steps of kStepBytes, split exactly as the virtual-time put path
// splits them (full kBlockBytes blocks, remainder in the last block).
constexpr int kP = 4;
constexpr int kQ = 2;
constexpr int kSteps = 3;
constexpr std::uint64_t kBlockBytes = 64 * KiB;
constexpr std::uint64_t kStepBytes = 5 * 64 * KiB + 32 * KiB;  // non-divisible
constexpr int kBlocksPerStep = 6;  // ceil(kStepBytes / kBlockBytes)

std::uint64_t block_bytes_of(int b) {
  return b + 1 < kBlocksPerStep ? kBlockBytes
                                : kStepBytes - (kBlocksPerStep - 1) * kBlockBytes;
}

// Per-(consumer,producer) delivery order, for the FIFO property.
using OrderLog = std::map<std::pair<int, int>, std::vector<BlockId>>;

void expect_fifo(const OrderLog& order, const char* executor) {
  for (const auto& [key, seq] : order) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LT(seq[i - 1], seq[i])
          << executor << ": consumer " << key.first << " saw producer "
          << key.second << "'s blocks out of production order: "
          << seq[i - 1].to_string() << " before " << seq[i].to_string();
    }
  }
}

// ---------------------------------------------------------- virtual time ----

struct VtOutcome {
  core::dsim::SimZipperStats stats;
  std::vector<RankStats> prod, cons;
  OrderLog order;
};

VtOutcome run_virtual(bool steal) {
  apps::WorkloadProfile prof;
  prof.name = "exec-diff";
  prof.steps = kSteps;
  prof.bytes_per_rank_per_step = kStepBytes;
  prof.t_collision = sim::from_seconds(0.01);
  prof.t_update = sim::from_seconds(0.01);
  prof.analysis_ns_per_byte = 1.0;  // cheap analysis: consumers starve => wait

  core::dsim::SimZipperConfig z;
  z.block_bytes = kBlockBytes;
  z.producer_buffer_blocks = 4;
  z.enable_steal = steal;

  VtOutcome out;
  z.on_analyzed = [&out](int c, const BlockHeader& h) {
    out.order[{c, h.id.producer}].push_back(h.id);
  };

  workflow::Cluster cluster(workflow::ClusterSpec::bridges(),
                            workflow::Layout{kP, kQ, 0});
  cluster.recorder.set_enabled(false);
  workflow::ZipperCoupling coupling(cluster, prof, z);
  workflow::run_workflow(cluster, prof, &coupling);
  out.stats = coupling.stats();
  for (int p = 0; p < kP; ++p) out.prod.push_back(coupling.producer_stats(p));
  for (int c = 0; c < kQ; ++c) out.cons.push_back(coupling.consumer_stats(c));
  return out;
}

// -------------------------------------------------------------- threaded ----

struct TempDirs {
  fs::path spill, preserve;
  TempDirs() {
    const auto base = fs::temp_directory_path() /
                      ("zipper_exec_test_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter()++));
    spill = base / "spill";
    preserve = base / "preserve";
    fs::create_directories(spill);
    fs::create_directories(preserve);
  }
  ~TempDirs() {
    std::error_code ec;
    fs::remove_all(spill.parent_path(), ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

std::vector<std::byte> make_payload(std::uint64_t seed, std::size_t n) {
  std::vector<std::byte> out(n);
  common::Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

struct RtOutcome {
  std::vector<RankStats> prod, cons;
  std::map<BlockId, int> delivered;  // id -> times read
  std::uint64_t bytes_read = 0;
  OrderLog order;
};

RtOutcome run_threaded(bool steal, double network_bandwidth) {
  TempDirs dirs;
  core::rt::Config cfg;
  cfg.spill_dir = dirs.spill;
  cfg.preserve_dir = dirs.preserve;
  cfg.producer_buffer_blocks = 4;
  cfg.high_water = 0.5;
  cfg.enable_steal = steal;
  cfg.network_bandwidth = network_bandwidth;
  core::rt::Runtime rt(kP, kQ, cfg);

  std::vector<std::thread> producers;
  for (int p = 0; p < kP; ++p) {
    producers.emplace_back([&rt, p] {
      for (int s = 0; s < kSteps; ++s) {
        for (int b = 0; b < kBlocksPerStep; ++b) {
          const auto payload = make_payload(
              static_cast<std::uint64_t>(p * 10000 + s * 100 + b),
              block_bytes_of(b));
          rt.producer(p).write(BlockId{s, p, b}, payload);
        }
      }
      rt.producer(p).finish();
    });
  }

  RtOutcome out;
  std::mutex m;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kQ; ++c) {
    consumers.emplace_back([&rt, &out, &m, c] {
      while (auto block = rt.consumer(c).read()) {
        std::lock_guard<std::mutex> lock(m);
        out.delivered[block->header.id]++;
        out.bytes_read += block->payload.size();
        out.order[{c, block->header.id.producer}].push_back(block->header.id);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  for (int p = 0; p < kP; ++p) out.prod.push_back(rt.producer(p).stats());
  for (int c = 0; c < kQ; ++c) out.cons.push_back(rt.consumer(c).stats());
  return out;
}

// Shared conservation assertions, phrased purely over the unified RankStats
// so the exact same checks run against both executors' counters.
void expect_conserved(const std::vector<RankStats>& prod,
                      const std::vector<RankStats>& cons, const char* executor) {
  constexpr std::uint64_t kExpectedBlocks =
      static_cast<std::uint64_t>(kP) * kSteps * kBlocksPerStep;
  std::uint64_t written = 0, sent = 0, stolen = 0;
  for (const auto& s : prod) {
    EXPECT_EQ(s.blocks_written, s.blocks_sent + s.blocks_stolen)
        << executor << ": every accepted block leaves via exactly one channel";
    written += s.blocks_written;
    sent += s.blocks_sent;
    stolen += s.blocks_stolen;
  }
  std::uint64_t read = 0, from_net = 0, from_disk = 0;
  for (const auto& s : cons) {
    EXPECT_EQ(s.blocks_read, s.blocks_from_network + s.blocks_from_disk)
        << executor << ": delivery splits across exactly the two channels";
    read += s.blocks_read;
    from_net += s.blocks_from_network;
    from_disk += s.blocks_from_disk;
  }
  EXPECT_EQ(written, kExpectedBlocks) << executor;
  EXPECT_EQ(read, kExpectedBlocks) << executor << ": exactly-once delivery";
  EXPECT_EQ(sent, from_net) << executor << ": network channel conserves blocks";
  EXPECT_EQ(stolen, from_disk) << executor << ": spill channel conserves blocks";
}

}  // namespace

// -------------------------------------------------------------- the suite ----

TEST(ExecDifferential, ConservationHoldsOnBothExecutors) {
  const auto vt = run_virtual(/*steal=*/true);
  // Throttled network so the threaded run exercises the spill channel too.
  const auto rt = run_threaded(/*steal=*/true, /*network_bandwidth=*/8e6);

  expect_conserved(vt.prod, vt.cons, "virtual-time");
  expect_conserved(rt.prod, rt.cons, "threaded");

  // The virtual-time facade's aggregate view agrees with its per-rank view.
  constexpr std::uint64_t kExpectedBlocks =
      static_cast<std::uint64_t>(kP) * kSteps * kBlocksPerStep;
  constexpr std::uint64_t kExpectedBytes =
      static_cast<std::uint64_t>(kP) * kSteps * kStepBytes;
  EXPECT_EQ(vt.stats.blocks_total, kExpectedBlocks);
  EXPECT_EQ(vt.stats.blocks_analyzed, kExpectedBlocks);
  EXPECT_EQ(vt.stats.bytes_via_network + vt.stats.bytes_via_pfs, kExpectedBytes);
  std::uint64_t vt_stolen = 0;
  for (const auto& s : vt.prod) vt_stolen += s.blocks_stolen;
  EXPECT_EQ(vt.stats.blocks_stolen, vt_stolen);

  // Byte conservation on the threaded side is measured on the real payloads.
  EXPECT_EQ(rt.bytes_read, kExpectedBytes);
  EXPECT_EQ(rt.delivered.size(), kExpectedBlocks);
  for (const auto& [id, count] : rt.delivered)
    EXPECT_EQ(count, 1) << "block " << id.to_string() << " delivered " << count
                        << " times";
}

TEST(ExecDifferential, PerProducerConsumerFifoOnBothExecutors) {
  // FIFO is only promised on the single-channel schedule: the dual channel
  // (spill + network) legitimately interleaves, so steal stays off, and
  // consumer stealing is off by default (sched.consumer_steal).
  const auto vt = run_virtual(/*steal=*/false);
  const auto rt = run_threaded(/*steal=*/false, /*network_bandwidth=*/0.0);

  expect_fifo(vt.order, "virtual-time");
  expect_fifo(rt.order, "threaded");

  // Static routing: each producer's stream lands wholly on one consumer, so
  // both executors must produce the same (producer -> consumer) incidence.
  std::set<std::pair<int, int>> vt_pairs, rt_pairs;
  for (const auto& [key, seq] : vt.order)
    if (!seq.empty()) vt_pairs.insert({key.second, key.first});
  for (const auto& [key, seq] : rt.order)
    if (!seq.empty()) rt_pairs.insert({key.second, key.first});
  EXPECT_EQ(vt_pairs, rt_pairs)
      << "the two executors routed producers to different consumers";
  EXPECT_EQ(vt_pairs.size(), static_cast<std::size_t>(kP));
}

TEST(ExecDifferential, WaitNsPopulatedOnBothExecutors) {
  // The historical asymmetry: only the threaded runtime reported consumer
  // wait_ns. The unified body accounts it on whichever clock it runs.
  const auto vt = run_virtual(/*steal=*/false);
  std::uint64_t vt_wait = 0;
  for (const auto& s : vt.cons) vt_wait += s.wait_ns;
  EXPECT_GT(vt_wait, 0u)
      << "virtual-time consumers must report time blocked waiting for blocks";

  const auto rt = run_threaded(/*steal=*/false, /*network_bandwidth=*/0.0);
  std::uint64_t rt_wait = 0;
  for (const auto& s : rt.cons) rt_wait += s.wait_ns;
  EXPECT_GT(rt_wait, 0u)
      << "threaded consumers must report time blocked waiting for blocks";
}

// ------------------------------------------------- sharded VT determinism ----

// Two-run determinism of the virtual-time path under --sim-threads 4: the
// sharded parallel DES must replay the identical schedule, so the artifact
// bytes (CSV and JSON) of back-to-back runs are equal.
TEST(ExecDeterminism, ShardedVirtualTimeTwoRunsByteIdentical) {
  exp::ScenarioSpec spec;
  spec.cluster = "stampede2";
  spec.workload = exp::Workload::kCfdStampede2;
  spec.steps = 2;
  spec.producers = 544;  // 8 KNL hosts
  spec.consumers = 272;  // 4 KNL hosts
  spec.method = transports::Method::kZipper;
  spec.zipper.enable_steal = false;
  spec.halo_neighbors = 0;
  spec.label = "exec/determinism";
  spec.sim_threads = 4;

  const auto first = exp::run_scenario(spec);
  ASSERT_FALSE(first.crashed) << first.note;
  const auto second = exp::run_scenario(spec);
  ASSERT_FALSE(second.crashed) << second.note;
  EXPECT_EQ(exp::to_csv({first}), exp::to_csv({second}));
  EXPECT_EQ(exp::to_json({first}), exp::to_json({second}));
}
