// Physics tests for the Lennard-Jones MD mini-app: lattice setup, force
// correctness (cell list vs all-pairs), conservation laws, and melt behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/analysis/msd.hpp"
#include "apps/md/lj_md.hpp"

using zipper::apps::md::LjMd;
using zipper::apps::md::MdParams;

namespace {
MdParams small_params(int cells = 3) {
  MdParams p;
  p.cells_per_side = cells;
  p.seed = 7;
  return p;
}
}  // namespace

TEST(Md, FccLatticeAtomCountAndBox) {
  LjMd md(small_params(3));
  EXPECT_EQ(md.num_atoms(), 108);
  EXPECT_NEAR(md.box(), std::cbrt(108 / 0.8442), 1e-12);
  // All atoms inside the box.
  for (double x : md.positions()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, md.box());
  }
}

TEST(Md, InitialTemperatureMatchesTarget) {
  LjMd md(small_params(3));
  EXPECT_NEAR(md.temperature(), 1.44, 1e-9);
}

TEST(Md, InitialMomentumIsZero) {
  LjMd md(small_params(3));
  for (double p : md.total_momentum()) EXPECT_NEAR(p, 0.0, 1e-9);
}

TEST(Md, MomentumConservedOverRun) {
  LjMd md(small_params(4));
  md.run(100);
  for (double p : md.total_momentum()) EXPECT_NEAR(p, 0.0, 1e-7);
}

TEST(Md, CellListMatchesAllPairs) {
  // cells_per_side = 5 -> box ~ 8.4 -> cell list active (3 cells/side).
  MdParams p = small_params(5);
  LjMd md(p);
  md.run(20);  // let it disorder a bit first
  std::vector<double> ref_forces;
  double ref_pot = 0.0;
  md.compute_forces_reference(ref_forces, ref_pot);
  // step() leaves force_ = forces at current positions; compare via another
  // half-step trick: recompute through one more step's first half. Instead we
  // compare potential energies and the effect of forces indirectly: the
  // reference and production paths must agree on the potential.
  EXPECT_NEAR(md.potential_energy(), ref_pot, std::abs(ref_pot) * 1e-10);
}

TEST(Md, EnergyConservedInNve) {
  MdParams p = small_params(4);
  p.dt = 0.002;
  LjMd md(p);
  const double e0 = md.total_energy();
  md.run(250);
  const double e1 = md.total_energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 2e-3) << "NVE drift too large";
}

TEST(Md, SolidHeatsToLiquid) {
  // Starting from a perfect lattice at T=1.44, half the kinetic energy flows
  // into potential energy as the crystal melts; temperature drops from the
  // initial value but stays well above zero.
  LjMd md(small_params(4));
  md.run(200);
  EXPECT_LT(md.temperature(), 1.44);
  EXPECT_GT(md.temperature(), 0.3);
}

TEST(Md, MsdZeroAtStartAndGrows) {
  LjMd md(small_params(4));
  std::vector<double> ref(md.positions_unwrapped().begin(),
                          md.positions_unwrapped().end());
  zipper::apps::analysis::MsdAccumulator msd0;
  msd0.add_block(md.positions_unwrapped(), ref);
  EXPECT_DOUBLE_EQ(msd0.value(), 0.0);

  md.run(50);
  zipper::apps::analysis::MsdAccumulator msd1;
  msd1.add_block(md.positions_unwrapped(), ref);
  const double at50 = msd1.value();
  EXPECT_GT(at50, 0.0);

  md.run(150);
  zipper::apps::analysis::MsdAccumulator msd2;
  msd2.add_block(md.positions_unwrapped(), ref);
  EXPECT_GT(msd2.value(), at50) << "MSD must keep growing in the liquid";
}

TEST(Md, MsdMergeAcrossBlocksMatchesWhole) {
  LjMd md(small_params(3));
  std::vector<double> ref(md.positions_unwrapped().begin(),
                          md.positions_unwrapped().end());
  md.run(30);
  auto now = md.positions_unwrapped();

  zipper::apps::analysis::MsdAccumulator whole;
  whole.add_block(now, ref);

  zipper::apps::analysis::MsdAccumulator left, right;
  const std::size_t half_atoms = static_cast<std::size_t>(md.num_atoms()) / 2;
  left.add_block(now.subspan(0, 3 * half_atoms),
                 std::span<const double>(ref).subspan(0, 3 * half_atoms));
  right.add_block(now.subspan(3 * half_atoms),
                  std::span<const double>(ref).subspan(3 * half_atoms));
  left.merge(right);
  EXPECT_EQ(left.atoms(), whole.atoms());
  EXPECT_NEAR(left.value(), whole.value(), 1e-12);
}

TEST(Md, SerializeFrameBytes) {
  LjMd md(small_params(3));
  std::vector<std::byte> buf(md.frame_bytes());
  EXPECT_EQ(md.serialize_positions(buf), md.frame_bytes());
  const double* d = reinterpret_cast<const double*>(buf.data());
  EXPECT_EQ(d[0], md.positions_unwrapped()[0]);
  EXPECT_EQ(d[3 * static_cast<std::size_t>(md.num_atoms()) - 1],
            md.positions_unwrapped()[3 * static_cast<std::size_t>(md.num_atoms()) - 1]);
}

TEST(Md, DeterministicWithSameSeed) {
  LjMd a(small_params(3)), b(small_params(3));
  a.run(50);
  b.run(50);
  EXPECT_EQ(a.positions()[0], b.positions()[0]);
  EXPECT_EQ(a.total_energy(), b.total_energy());
}
