// The chaos layer: token grammars, engine determinism, per-axis effects on
// the simulated runtime, the fault-resilience path (retry/backoff/spill-
// degrade), the online adaptive controller's escalation ladder, sweep-level
// error capture, and the determinism contract under chaos (-j1 == -j4).
// Also pins two drain-path regressions: sim::Channel keeps buffered values
// receivable after close(), and a threaded-runtime consumer whose peer
// abandoned a non-empty buffer still terminates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos/chaos.hpp"
#include "core/rt/runtime.hpp"
#include "exp/artifacts.hpp"
#include "exp/engine.hpp"
#include "exp/grid.hpp"
#include "opt/adaptive.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "workflow/pipeline.hpp"

namespace fs = std::filesystem;
using namespace zipper;
using namespace zipper::core::chaos;

// ---------------------------------------------------------------- tokens ----

TEST(ChaosTokens, RoundTrip) {
  for (const char* t : {"1x4", "2x1.5", "3x8", "off"}) {
    const auto s = parse_straggler(t);
    ASSERT_TRUE(s.has_value()) << t;
    EXPECT_EQ(parse_straggler(straggler_token(*s))->count, s->count) << t;
  }
  for (const char* t : {"2x8@0.5", "1x4@2", "off"}) {
    const auto f = parse_fault(t);
    ASSERT_TRUE(f.has_value()) << t;
    const auto g = parse_fault(fault_token(*f));
    ASSERT_TRUE(g.has_value()) << t;
    EXPECT_EQ(g->events, f->events);
    EXPECT_DOUBLE_EQ(g->factor, f->factor);
    EXPECT_DOUBLE_EQ(g->duration_s, f->duration_s);
  }
  for (const char* t : {"0.7", "0.7@2", "1", "off"}) {
    const auto b = parse_burst(t);
    ASSERT_TRUE(b.has_value()) << t;
    const auto c = parse_burst(burst_token(*b));
    ASSERT_TRUE(c.has_value()) << t;
    EXPECT_DOUBLE_EQ(c->intensity, b->intensity);
    EXPECT_DOUBLE_EQ(c->period_s, b->period_s);
  }
  for (const char* t : {"3", "3@6", "1.5@2.5", "off"}) {
    const auto d = parse_drift(t);
    ASSERT_TRUE(d.has_value()) << t;
    const auto e = parse_drift(drift_token(*d));
    ASSERT_TRUE(e.has_value()) << t;
    EXPECT_DOUBLE_EQ(e->factor, d->factor);
    EXPECT_DOUBLE_EQ(e->period_steps, d->period_steps);
  }
  // "0" is the documented alias for "off" on every axis.
  EXPECT_FALSE(parse_straggler("0")->enabled());
  EXPECT_FALSE(parse_fault("0")->enabled());
  EXPECT_FALSE(parse_burst("0")->enabled());
  EXPECT_FALSE(parse_drift("0")->enabled());
}

TEST(ChaosTokens, MalformedSpecsRejected) {
  for (const char* t : {"x4", "1x", "1x1", "1x0.5", "-1x4", "banana", "1x4x2",
                        "1.5x4", ""}) {
    EXPECT_FALSE(parse_straggler(t).has_value()) << t;
  }
  for (const char* t : {"2x8", "2@0.5", "x8@0.5", "2x8@", "2x1@0.5",
                        "2x8@-1", "banana", ""}) {
    EXPECT_FALSE(parse_fault(t).has_value()) << t;
  }
  for (const char* t : {"1.5", "-0.2", "0.7@", "@2", "0.7@0x2", "banana", ""}) {
    EXPECT_FALSE(parse_burst(t).has_value()) << t;
  }
  for (const char* t : {"0.5", "1", "3@", "@6", "3@-2", "banana", ""}) {
    EXPECT_FALSE(parse_drift(t).has_value()) << t;
  }
}

// ---------------------------------------------------------------- engine ----

namespace {

ChaosSpec all_axes_spec(std::uint64_t seed) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.straggler = {1, 4.0};
  spec.fault = {3, 8.0, 0.5};
  spec.burst = {0.7, 1.0};
  spec.drift = {3.0, 6.0};
  return spec;
}

}  // namespace

TEST(ChaosEngine, PureFunctionOfSpec) {
  const auto spec = all_axes_spec(99);
  ChaosEngine a(spec, 4, 3, 10.0);
  ChaosEngine b(spec, 4, 3, 10.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(a.straggler(c), b.straggler(c));
    for (double t : {0.0, 1.0, 2.5, 7.75, 9.9}) {
      EXPECT_EQ(a.fault_active(c, t), b.fault_active(c, t));
      EXPECT_DOUBLE_EQ(a.consumer_slowdown(c, t), b.consumer_slowdown(c, t));
    }
  }
  for (int p = 0; p < 4; ++p) {
    for (int s = 0; s < 20; ++s) {
      EXPECT_DOUBLE_EQ(a.compute_multiplier(p, s), b.compute_multiplier(p, s));
    }
  }
  ASSERT_EQ(a.fault_windows().size(), b.fault_windows().size());
  for (std::size_t i = 0; i < a.fault_windows().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fault_windows()[i].t0_s, b.fault_windows()[i].t0_s);
  }
}

TEST(ChaosEngine, FaultWindowsMaterializedFromSpec) {
  const auto spec = all_axes_spec(7);
  const double horizon = 10.0;
  ChaosEngine eng(spec, 4, 3, horizon);

  const auto& ws = eng.fault_windows();
  ASSERT_EQ(ws.size(), static_cast<std::size_t>(spec.fault.events));
  double prev = -1;
  for (const auto& w : ws) {
    EXPECT_GE(w.consumer, 0);
    EXPECT_LT(w.consumer, 3);
    EXPECT_GE(w.t0_s, 0.0);
    EXPECT_LE(w.t0_s, horizon);
    // Duration is jittered within 0.5x-1.5x of the spec mean.
    EXPECT_GE(w.t1_s - w.t0_s, 0.5 * spec.fault.duration_s);
    EXPECT_LE(w.t1_s - w.t0_s, 1.5 * spec.fault.duration_s);
    EXPECT_GE(w.t0_s, prev);  // sorted for the linear fault_active scan
    prev = w.t0_s;
    // The oracle agrees with its own schedule.
    const double mid = 0.5 * (w.t0_s + w.t1_s);
    EXPECT_TRUE(eng.fault_active(w.consumer, mid));
    EXPECT_GE(eng.consumer_slowdown(w.consumer, mid), spec.fault.factor);
  }

  // Exactly `count` stragglers, and their slowdown holds at all times.
  int stragglers = 0;
  for (int c = 0; c < 3; ++c) stragglers += eng.straggler(c) ? 1 : 0;
  EXPECT_EQ(stragglers, spec.straggler.count);

  // A different seed draws a different schedule (overwhelmingly likely).
  ChaosEngine other(all_axes_spec(8), 4, 3, horizon);
  bool differs = other.fault_windows().front().t0_s != ws.front().t0_s;
  for (int c = 0; c < 3 && !differs; ++c) {
    differs = other.straggler(c) != eng.straggler(c);
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosEngine, DriftMultiplierBoundedAndOscillating) {
  const auto spec = all_axes_spec(21);
  ChaosEngine eng(spec, 6, 3, 10.0);
  double lo = 1e9, hi = 0;
  for (int p = 0; p < 6; ++p) {
    for (int s = 0; s < 48; ++s) {
      const double m = eng.compute_multiplier(p, s);
      EXPECT_GE(m, 1.0);
      EXPECT_LE(m, spec.drift.factor + 1e-9);
      lo = std::min(lo, m);
      hi = std::max(hi, m);
    }
  }
  // Over several full periods the oscillation must actually visit both
  // the fast and the slow side.
  EXPECT_LT(lo, 1.3);
  EXPECT_GT(hi, 2.5);

  // Burst duty cycle: ON for the first half-period, OFF for the second.
  EXPECT_TRUE(eng.burst_active(0.1));
  EXPECT_FALSE(eng.burst_active(0.9));
}

TEST(ChaosEngine, DisabledAxesAreNeutral) {
  ChaosSpec spec;  // everything off
  spec.seed = 5;
  ChaosEngine eng(spec, 4, 2, 10.0);
  EXPECT_FALSE(spec.any());
  for (int c = 0; c < 2; ++c) {
    EXPECT_FALSE(eng.straggler(c));
    EXPECT_FALSE(eng.fault_active(c, 1.0));
    EXPECT_DOUBLE_EQ(eng.consumer_slowdown(c, 1.0), 1.0);
  }
  EXPECT_DOUBLE_EQ(eng.compute_multiplier(0, 3), 1.0);
  EXPECT_FALSE(eng.burst_active(0.2));
  EXPECT_TRUE(eng.fault_windows().empty());
}

// ---------------------------------------------------- adaptive controller ----

namespace {

ControlSnapshot snapshot(double stall_fraction) {
  ControlSnapshot s;
  s.now_s = 1.0;
  s.window_s = 0.25;
  s.stall_fraction = stall_fraction;
  s.stall_s = stall_fraction * s.window_s;
  return s;
}

}  // namespace

TEST(AdaptiveController, EscalationLadder) {
  opt::AdaptiveOptions opts;
  opts.base_block_bytes = 1 << 20;
  opt::AdaptiveController ctl(opts);
  EXPECT_EQ(ctl.level(), 0);

  // Rung 1: rebalance (lq + consumer stealing), no spill yet.
  auto a1 = ctl.on_window(snapshot(0.5));
  EXPECT_EQ(ctl.level(), 1);
  ASSERT_TRUE(a1.any());
  ASSERT_TRUE(a1.route.has_value());
  EXPECT_EQ(*a1.route, core::sched::RouteKind::kLeastQueued);
  ASSERT_TRUE(a1.consumer_steal.has_value());
  EXPECT_TRUE(*a1.consumer_steal);
  ASSERT_TRUE(a1.spill.has_value());
  EXPECT_FALSE(*a1.spill);

  // Rung 2: degrade to the spill channel.
  auto a2 = ctl.on_window(snapshot(0.4));
  EXPECT_EQ(ctl.level(), 2);
  ASSERT_TRUE(a2.spill.has_value());
  EXPECT_TRUE(*a2.spill);

  // Rung 3: coarsen blocks; the ladder is capped there.
  auto a3 = ctl.on_window(snapshot(0.4));
  EXPECT_EQ(ctl.level(), 3);
  ASSERT_TRUE(a3.block_bytes.has_value());
  EXPECT_EQ(*a3.block_bytes, opts.base_block_bytes * 2);
  auto a4 = ctl.on_window(snapshot(0.4));
  EXPECT_EQ(ctl.level(), 3);
  EXPECT_FALSE(a4.any());
}

TEST(AdaptiveController, HysteresisOnTheWayDown) {
  opt::AdaptiveOptions opts;
  opts.calm_windows = 4;
  opt::AdaptiveController ctl(opts);
  ctl.on_window(snapshot(0.5));
  ctl.on_window(snapshot(0.5));
  ASSERT_EQ(ctl.level(), 2);

  // Three calm windows: not yet.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ctl.on_window(snapshot(0.0)).any());
    EXPECT_EQ(ctl.level(), 2);
  }
  // Fourth consecutive calm window de-escalates one rung.
  auto down = ctl.on_window(snapshot(0.0));
  EXPECT_TRUE(down.any());
  EXPECT_EQ(ctl.level(), 1);

  // A middling window (between lo and hi) resets the calm streak without
  // moving the ladder — the hysteresis band.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(ctl.on_window(snapshot(0.0)).any());
  EXPECT_FALSE(ctl.on_window(snapshot(0.05)).any());
  EXPECT_EQ(ctl.level(), 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ctl.on_window(snapshot(0.0)).any());
    EXPECT_EQ(ctl.level(), 1);
  }
  EXPECT_TRUE(ctl.on_window(snapshot(0.0)).any());
  EXPECT_EQ(ctl.level(), 0);
  EXPECT_EQ(ctl.moves(), 4);
}

// -------------------------------------------- chaos axes through the DES ----

namespace {

exp::ScenarioSpec small_zipper_spec(const std::string& label) {
  exp::ScenarioSpec s;
  s.label = label;
  s.cluster = "bridges";
  s.workload = exp::Workload::kCfdBridges;
  s.steps = 6;
  s.producers = 4;
  s.consumers = 2;
  s.method = transports::Method::kZipper;
  s.zipper.producer_buffer_blocks = 8;
  s.zipper.consumer_buffer_blocks = 8;
  s.zipper.enable_steal = false;
  return s;
}

}  // namespace

TEST(ChaosScenario, StragglerSlowsTheRun) {
  auto base = small_zipper_spec("calm");
  const auto calm = exp::run_scenario(base);
  ASSERT_FALSE(calm.crashed);
  // No chaos => no resilience columns (the byte-identity guard).
  EXPECT_FALSE(calm.has("put_retries"));
  EXPECT_FALSE(calm.has("control_actions"));

  auto strag = base;
  strag.label = "straggler";
  strag.chaos.seed = 11;
  strag.chaos.straggler = {1, 8.0};
  const auto hit = exp::run_scenario(strag);
  ASSERT_FALSE(hit.crashed);
  EXPECT_TRUE(hit.has("put_retries"));
  EXPECT_GT(hit.get("end_to_end_s"), calm.get("end_to_end_s"));
}

TEST(ChaosScenario, FaultResilienceRetriesAndDegrades) {
  auto spec = small_zipper_spec("fault");
  spec.chaos.seed = 3;
  spec.chaos.fault = {3, 8.0, 1.0};
  const auto r = exp::run_scenario(spec);
  ASSERT_FALSE(r.crashed);
  // The degraded puts hit the retry/backoff path, and at least one fault
  // outlasted the retry budget and spilled its block to the PFS instead of
  // wedging the producer.
  EXPECT_GT(r.get("put_retries"), 0.0);
  EXPECT_GT(r.get("blocks_spilled_slow"), 0.0);
  EXPECT_GT(r.get("bytes_via_pfs"), 0.0);
  // Degradation, not loss: the run still completes every step.
  EXPECT_GT(r.get("blocks_total"), 0.0);
  EXPECT_GT(r.get("end_to_end_s"), 0.0);
}

TEST(ChaosScenario, DriftInflatesCompute) {
  auto base = small_zipper_spec("calm");
  const auto calm = exp::run_scenario(base);
  auto drift = base;
  drift.label = "drift";
  drift.chaos.seed = 17;
  drift.chaos.drift = {3.0, 4.0};
  const auto hit = exp::run_scenario(drift);
  ASSERT_FALSE(hit.crashed);
  // The multiplier is >= 1 by construction, so drifted compute is strictly
  // longer and the producers finish later.
  EXPECT_GT(hit.get("producers_done_s"), calm.get("producers_done_s"));
  EXPECT_GT(hit.get("end_to_end_s"), calm.get("end_to_end_s"));
}

TEST(ChaosScenario, BurstSlowsPreserveStores) {
  auto base = small_zipper_spec("calm-preserve");
  base.zipper.preserve = true;
  const auto calm = exp::run_scenario(base);
  auto burst = base;
  burst.label = "burst-preserve";
  burst.chaos.seed = 29;
  burst.chaos.burst = {0.9, 0.5};
  const auto hit = exp::run_scenario(burst);
  ASSERT_FALSE(hit.crashed);
  // Preserve-mode stores share the PFS with the injected bursts.
  EXPECT_GT(hit.get("end_to_end_s"), calm.get("end_to_end_s"));
}

TEST(ChaosScenario, AdaptiveControllerActsUnderChaos) {
  auto spec = small_zipper_spec("adapt");
  spec.chaos.seed = 11;
  spec.chaos.straggler = {1, 8.0};
  spec.adaptive_control = true;
  const auto r = exp::run_scenario(spec);
  ASSERT_FALSE(r.crashed);
  EXPECT_GT(r.get("control_actions"), 0.0);

  // Same spec, same result: the controller is part of the deterministic
  // (time, seq) event order, not a wall-clock actor.
  const auto r2 = exp::run_scenario(spec);
  EXPECT_EQ(exp::to_csv({r}), exp::to_csv({r2}));
}

// ------------------------------------- chaos on an interior pipeline stage ----

TEST(ChaosPipeline, FaultOnInteriorEdgePreservesExactlyOnce) {
  // Fault the staging edge of a sim -> reduce -> analyze chain: the interior
  // hop's retry/backoff/spill-degrade path engages, and still every edge
  // delivers each block exactly once — the multi-hop done protocol survives
  // mid-chain outages.
  auto spec = small_zipper_spec("hybrid-fault");
  spec.pipeline = workflow::make_chain(2);
  spec.pipeline.chaos_edge = 1;
  spec.chaos.seed = 3;
  spec.chaos.fault = {3, 8.0, 1.0};
  const auto r = exp::run_scenario(spec);
  ASSERT_FALSE(r.crashed);
  EXPECT_EQ(r.get("pipeline_edges"), 2.0);

  // Resilience engaged on the targeted edge only; the calm edge publishes
  // no resilience columns at all (the byte-identity guard, per edge).
  EXPECT_GT(r.get("e1_put_retries") + r.get("e1_blocks_spilled_slow"), 0.0);
  EXPECT_FALSE(r.has("e0_put_retries"));
  EXPECT_FALSE(r.has("e0_blocks_spilled_slow"));

  // Exactly-once across the hops: each edge analyzes everything it admits,
  // and the interior edge admits exactly what the upstream edge analyzed.
  EXPECT_GT(r.get("e0_blocks_total"), 0.0);
  EXPECT_EQ(r.get("e0_blocks_analyzed"), r.get("e0_blocks_total"));
  EXPECT_EQ(r.get("e1_blocks_total"), r.get("e0_blocks_analyzed"));
  EXPECT_EQ(r.get("e1_blocks_analyzed"), r.get("e1_blocks_total"));
}

TEST(ChaosPipeline, StragglerOnInteriorStageSlowsTheChain) {
  auto base = small_zipper_spec("hybrid-calm");
  base.pipeline = workflow::make_chain(2);
  const auto calm = exp::run_scenario(base);
  ASSERT_FALSE(calm.crashed);
  EXPECT_FALSE(calm.has("e1_put_retries"));  // no chaos, no columns

  auto strag = base;
  strag.label = "hybrid-straggler";
  strag.pipeline.chaos_edge = 1;
  strag.chaos.seed = 11;
  strag.chaos.straggler = {1, 8.0};
  const auto hit = exp::run_scenario(strag);
  ASSERT_FALSE(hit.crashed);
  // A straggling interior consumer backpressures the whole chain.
  EXPECT_GT(hit.get("end_to_end_s"), calm.get("end_to_end_s"));
  EXPECT_TRUE(hit.has("e1_put_retries"));
  // Conservation holds under the straggler too.
  EXPECT_EQ(hit.get("e1_blocks_total"), hit.get("e0_blocks_analyzed"));
  EXPECT_EQ(hit.get("e1_blocks_analyzed"), hit.get("e1_blocks_total"));
}

TEST(ChaosPipeline, InteriorChaosRunsAreDeterministic) {
  auto spec = small_zipper_spec("hybrid-det");
  spec.pipeline = workflow::make_chain(3);
  spec.pipeline.chaos_edge = 1;
  spec.chaos.seed = 7;
  spec.chaos.fault = {2, 8.0, 0.5};
  spec.adaptive_control = true;
  const auto a = exp::run_scenario(spec);
  const auto b = exp::run_scenario(spec);
  ASSERT_FALSE(a.crashed);
  EXPECT_EQ(exp::to_csv({a}), exp::to_csv({b}));
}

// ------------------------------------------- sweep error capture (column) ----

TEST(ChaosSweep, ScenarioErrorIsCapturedPerRow) {
  auto good = small_zipper_spec("good");
  auto bad = small_zipper_spec("bad");
  bad.cluster = "no-such-cluster";  // run_scenario throws invalid_argument

  const auto results = exp::run_sweep({good, bad}, {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].crashed);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_TRUE(results[1].crashed);
  EXPECT_NE(results[1].error.find("no-such-cluster"), std::string::npos);

  // The error column appears exactly when some row carries an error.
  const auto csv = exp::to_csv(results);
  EXPECT_NE(csv.find(",error"), std::string::npos);
  EXPECT_NE(csv.find("no-such-cluster"), std::string::npos);
  const auto clean = exp::to_csv({results[0]});
  EXPECT_EQ(clean.find(",error"), std::string::npos);
}

// --------------------------------------- determinism under chaos, -j1==-j4 ----

TEST(ChaosSweep, FaultSweepBitwiseIdenticalAcrossJobs) {
  exp::SweepGrid grid;
  grid.base = small_zipper_spec("");
  grid.label_prefix = "chaosdet";
  grid.base.chaos.seed = 1234;
  grid.faults = {*parse_fault("2x8@0.5"), *parse_fault("1x4@1")};
  grid.adaptive_control = {0, 1};
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 4u);

  exp::SweepOptions serial;
  serial.jobs = 1;
  const auto r1 = exp::run_sweep(specs, serial);
  exp::SweepOptions parallel;
  parallel.jobs = 4;
  const auto r4 = exp::run_sweep(specs, parallel);

  EXPECT_EQ(exp::to_csv(r1), exp::to_csv(r4));
  EXPECT_EQ(exp::to_json(r1), exp::to_json(r4));
}

// ------------------------------------------------------ drain-path fixes ----

// Regression: a closed sim::Channel must keep its buffered values available
// to try_recv (the consumer-steal primitive) — close() ends the stream, it
// does not discard in-flight blocks.
TEST(ChaosDrain, ChannelTryRecvDrainsAfterClose) {
  sim::Simulation s;
  sim::Channel<int> ch(s, 4);
  ASSERT_TRUE(ch.try_send(1));
  ASSERT_TRUE(ch.try_send(2));
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_EQ(ch.size(), 2u);
  auto a = ch.try_recv();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  auto b = ch.try_recv();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(ch.try_recv().has_value());
}

// Regression: with consumer stealing on, a consumer whose own stream ended
// used to nap forever when a peer abandoned a non-empty buffer below the
// steal threshold (the peer's app thread stopped calling read()). The
// surviving consumer must drain the leftovers and terminate.
TEST(ChaosDrain, RtConsumerTerminatesWhenPeerAbandonsBuffer) {
  const auto base = fs::temp_directory_path() /
                    ("zipper_chaos_" + std::to_string(::getpid()));
  fs::create_directories(base / "spill");
  fs::create_directories(base / "preserve");

  core::rt::Config cfg;
  cfg.spill_dir = base / "spill";
  cfg.preserve_dir = base / "preserve";
  cfg.sched.consumer_steal = true;
  cfg.sched.steal_min_queue = 64;  // normal stealing never fires here

  const int kBlocks = 5;
  // Heap-allocated and deliberately leaked on failure: destroying the
  // runtime while the survivor thread is wedged inside read() would turn a
  // clean test failure into a crash for the whole suite. P == Q so the
  // contiguous map is one-to-one: every block of producer 0 lands on
  // consumer 0 — who never reads. Producer 1 writes nothing.
  auto* rt = new core::rt::Runtime(2, 2, cfg);
  std::vector<std::byte> payload(1024, std::byte{0x5A});
  for (int b = 0; b < kBlocks; ++b) {
    rt->producer(0).write(core::BlockId{0, 0, b}, payload);
  }
  rt->producer(0).finish();
  rt->producer(1).finish();

  auto* drained = new std::atomic<int>{0};
  auto* done = new std::atomic<bool>{false};
  std::thread survivor([rt, drained, done] {
    while (rt->consumer(1).read()) drained->fetch_add(1);
    done->store(true);
  });
  // Generous wall-clock bound: without the drain fix this never finishes.
  for (int i = 0; i < 2000 && !done->load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(done->load()) << "consumer 1 wedged on the abandoned buffer";
  survivor.join();
  EXPECT_EQ(drained->load(), kBlocks);
  EXPECT_EQ(rt->consumer(1).stats().blocks_stolen_from_peers,
            static_cast<std::uint64_t>(kBlocks));
  delete rt;
  delete drained;
  delete done;
  std::error_code ec;
  fs::remove_all(base, ec);
}
