// Tests for the mini-MPI layer: matching, wildcards, sendrecv, isend/waitall
// via Latch, and the collectives (barrier, bcast, reduce, allreduce, gather).
#include <gtest/gtest.h>

#include <any>
#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/latch.hpp"
#include "sim/simulation.hpp"

using namespace zipper;
using zipper::sim::Latch;
using zipper::sim::Simulation;
using zipper::sim::Task;
using zipper::sim::Time;

namespace {

net::FabricConfig fabric_cfg(int hosts) {
  net::FabricConfig cfg;
  cfg.num_hosts = hosts;
  cfg.hosts_per_leaf = 4;
  cfg.num_core_switches = 2;
  cfg.nic_bandwidth = 1e9;
  cfg.port_bandwidth = 1e9;
  cfg.shm_bandwidth = 4e9;
  cfg.hop_latency = 50;
  cfg.software_overhead = 0;
  return cfg;
}

struct Rig {
  Simulation sim;
  net::Fabric fabric;
  mpi::World world;

  // `ranks_per_host` ranks packed per host.
  Rig(int nranks, int nhosts, int ranks_per_host = 1)
      : fabric(sim, fabric_cfg(nhosts)),
        world(sim, fabric, make_map(nranks, ranks_per_host)) {}

  static std::vector<int> make_map(int nranks, int per_host) {
    std::vector<int> m(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) m[static_cast<std::size_t>(r)] = r / per_host;
    return m;
  }
};

}  // namespace

TEST(MiniMpi, SendRecvDeliversPayload) {
  Rig rig(2, 2);
  double got = 0;
  rig.sim.spawn([](Rig& r) -> Task {
    co_await r.world.send(0, 1, /*tag=*/7, 1024, std::any{3.25});
  }(rig));
  rig.sim.spawn([](Rig& r, double& g) -> Task {
    mpi::Envelope e;
    co_await r.world.recv(1, 0, 7, e);
    g = std::any_cast<double>(e.payload);
    EXPECT_EQ(e.src, 0);
    EXPECT_EQ(e.tag, 7);
    EXPECT_EQ(e.bytes, 1024u);
  }(rig, got));
  rig.sim.run();
  EXPECT_DOUBLE_EQ(got, 3.25);
  EXPECT_EQ(rig.sim.unfinished_processes(), 0u);
}

TEST(MiniMpi, BufferedSendDoesNotNeedPostedRecv) {
  Rig rig(2, 2);
  Time send_done = -1, recv_done = -1;
  rig.sim.spawn([](Rig& r, Time& sd) -> Task {
    co_await r.world.send(0, 1, 1, 1000);
    sd = r.sim.now();
  }(rig, send_done));
  rig.sim.spawn([](Rig& r, Time& rd) -> Task {
    co_await r.sim.delay(1'000'000);  // receiver arrives late
    mpi::Envelope e;
    co_await r.world.recv(1, 0, 1, e);
    rd = r.sim.now();
  }(rig, recv_done));
  rig.sim.run();
  EXPECT_LT(send_done, 10'000);       // sender was not blocked on the recv
  EXPECT_EQ(recv_done, 1'000'000);    // message was already waiting
}

TEST(MiniMpi, TagMatchingIsSelective) {
  Rig rig(2, 2);
  std::vector<int> order;
  rig.sim.spawn([](Rig& r) -> Task {
    co_await r.world.send(0, 1, /*tag=*/5, 100, std::any{5.0});
    co_await r.world.send(0, 1, /*tag=*/6, 100, std::any{6.0});
  }(rig));
  rig.sim.spawn([](Rig& r, std::vector<int>& ord) -> Task {
    mpi::Envelope e;
    co_await r.world.recv(1, 0, 6, e);  // receive tag 6 first
    ord.push_back(static_cast<int>(std::any_cast<double>(e.payload)));
    co_await r.world.recv(1, 0, 5, e);
    ord.push_back(static_cast<int>(std::any_cast<double>(e.payload)));
  }(rig, order));
  rig.sim.run();
  EXPECT_EQ(order, (std::vector<int>{6, 5}));
}

TEST(MiniMpi, WildcardsMatchAnything) {
  Rig rig(3, 3);
  int received = 0;
  rig.sim.spawn([](Rig& r) -> Task { co_await r.world.send(0, 2, 11, 64); }(rig));
  rig.sim.spawn([](Rig& r) -> Task { co_await r.world.send(1, 2, 12, 64); }(rig));
  rig.sim.spawn([](Rig& r, int& n) -> Task {
    mpi::Envelope e;
    co_await r.world.recv(2, mpi::kAnySource, mpi::kAnyTag, e);
    ++n;
    co_await r.world.recv(2, mpi::kAnySource, mpi::kAnyTag, e);
    ++n;
  }(rig, received));
  rig.sim.run();
  EXPECT_EQ(received, 2);
}

TEST(MiniMpi, IsendWithLatchWaitall) {
  Rig rig(4, 4);
  Time all_done = -1;
  rig.sim.spawn([](Rig& r, Time& d) -> Task {
    Latch latch(r.sim, 3);
    for (int dst = 1; dst < 4; ++dst) {
      r.world.isend(0, dst, 9, 5000, {}, &latch);
    }
    co_await latch.wait();  // MPI_Waitall
    d = r.sim.now();
  }(rig, all_done));
  for (int dst = 1; dst < 4; ++dst) {
    rig.sim.spawn([](Rig& r, int me) -> Task {
      mpi::Envelope e;
      co_await r.world.recv(me, 0, 9, e);
    }(rig, dst));
  }
  rig.sim.run();
  // Three 5064-byte sends serialize at host 0's TX: >= 3 * 5064 ns.
  EXPECT_GE(all_done, 3 * 5064);
  EXPECT_EQ(rig.sim.unfinished_processes(), 0u);
}

TEST(MiniMpi, SendrecvCompletesBothSides) {
  // Classic halo exchange ring with 4 ranks; everyone sendrecvs to the right.
  Rig rig(4, 4);
  int completed = 0;
  for (int r = 0; r < 4; ++r) {
    rig.sim.spawn([](Rig& rg, int me, int& done) -> Task {
      const int right = (me + 1) % 4;
      const int left = (me + 3) % 4;
      mpi::Envelope e;
      co_await rg.world.sendrecv(me, right, 3, 2048, left, 3, e);
      EXPECT_EQ(e.src, left);
      ++done;
    }(rig, r, completed));
  }
  rig.sim.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(rig.sim.unfinished_processes(), 0u);
}

TEST(MiniMpi, SameHostRanksUseShm) {
  Rig rig(2, 1, /*ranks_per_host=*/2);
  rig.sim.spawn([](Rig& r) -> Task { co_await r.world.send(0, 1, 1, 4096); }(rig));
  rig.sim.spawn([](Rig& r) -> Task {
    mpi::Envelope e;
    co_await r.world.recv(1, 0, 1, e);
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.fabric.counters(0).xmit_data, 0u);  // never hit the NIC
}

// ------------------------------------------------------------- collectives --

namespace {

void run_collective_test(int n, int per_host,
                         const std::function<Task(Rig&, mpi::Communicator&, int)>& body) {
  Rig rig(n, (n + per_host - 1) / per_host, per_host);
  std::vector<int> members(static_cast<std::size_t>(n));
  std::iota(members.begin(), members.end(), 0);
  mpi::Communicator comm(rig.world, members, /*tag_space=*/1 << 20);
  for (int r = 0; r < n; ++r) rig.sim.spawn(body(rig, comm, r));
  rig.sim.run();
  EXPECT_EQ(rig.sim.unfinished_processes(), 0u) << "collective deadlocked, n=" << n;
}

}  // namespace

class CollectiveSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64));

TEST_P(CollectiveSizes, BarrierNobodyEscapesEarly) {
  const int n = GetParam();
  // Rank 0 enters the barrier late; nobody may leave before it enters.
  struct Shared {
    Time rank0_entered = -1;
    std::vector<Time> left;
    explicit Shared(int k) : left(static_cast<std::size_t>(k), -1) {}
  };
  auto shared = std::make_shared<Shared>(n);
  run_collective_test(n, 2, [shared](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    if (r == 0) {
      co_await rg.sim.delay(500'000);
      shared->rank0_entered = rg.sim.now();
    }
    co_await comm.barrier(r);
    shared->left[static_cast<std::size_t>(r)] = rg.sim.now();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(shared->left[static_cast<std::size_t>(r)],
              shared->rank0_entered)
        << "rank " << r << " escaped the barrier early (n=" << n << ")";
  }
}

TEST_P(CollectiveSizes, ReduceSumsToRoot) {
  const int n = GetParam();
  auto values = std::make_shared<std::vector<double>>(static_cast<std::size_t>(n), 0.0);
  run_collective_test(n, 2, [values, n](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    double v = static_cast<double>(r + 1);
    co_await comm.reduce(r, /*root=*/0, v);
    (*values)[static_cast<std::size_t>(r)] = v;
    (void)rg;
    (void)n;
  });
  EXPECT_DOUBLE_EQ((*values)[0], n * (n + 1) / 2.0);
}

TEST_P(CollectiveSizes, ReduceToNonzeroRoot) {
  const int n = GetParam();
  const int root = (n - 1) / 2;
  auto values = std::make_shared<std::vector<double>>(static_cast<std::size_t>(n), 0.0);
  run_collective_test(n, 2, [values, root](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    double v = 2.0;
    co_await comm.reduce(r, root, v);
    (*values)[static_cast<std::size_t>(r)] = v;
    (void)rg;
  });
  EXPECT_DOUBLE_EQ((*values)[static_cast<std::size_t>(root)], 2.0 * n);
}

TEST_P(CollectiveSizes, AllreduceEveryRankHasSum) {
  const int n = GetParam();
  auto values = std::make_shared<std::vector<double>>(static_cast<std::size_t>(n), 0.0);
  run_collective_test(n, 2, [values](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    double v = static_cast<double>(r + 1);
    co_await comm.allreduce(r, v);
    (*values)[static_cast<std::size_t>(r)] = v;
    (void)rg;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ((*values)[static_cast<std::size_t>(r)], n * (n + 1) / 2.0)
        << "rank " << r;
  }
}

TEST_P(CollectiveSizes, BcastReachesEveryRank) {
  const int n = GetParam();
  auto done = std::make_shared<std::vector<int>>(static_cast<std::size_t>(n), 0);
  run_collective_test(n, 2, [done, n](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    co_await comm.bcast(r, /*root=*/n > 2 ? 2 : 0, 4096);
    (*done)[static_cast<std::size_t>(r)] = 1;
    (void)rg;
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ((*done)[static_cast<std::size_t>(r)], 1);
}

TEST_P(CollectiveSizes, GatherCompletes) {
  const int n = GetParam();
  auto done = std::make_shared<int>(0);
  run_collective_test(n, 2, [done](Rig& rg, mpi::Communicator& comm, int r) -> Task {
    co_await comm.gather(r, 0, 1024);
    ++*done;
    (void)rg;
  });
  EXPECT_EQ(*done, n);
}

TEST(MiniMpi, BackToBackCollectivesDoNotCrossTalk) {
  const int n = 8;
  Rig rig(n, 4, 2);
  std::vector<int> members(n);
  std::iota(members.begin(), members.end(), 0);
  mpi::Communicator comm(rig.world, members, 1 << 20);
  auto sums = std::make_shared<std::vector<double>>(n, 0.0);
  for (int r = 0; r < n; ++r) {
    rig.sim.spawn([](Rig& rg, mpi::Communicator& c, int me,
                     std::shared_ptr<std::vector<double>> out) -> Task {
      for (int iter = 0; iter < 10; ++iter) {
        co_await c.barrier(me);
        double v = 1.0;
        co_await c.allreduce(me, v);
        (*out)[static_cast<std::size_t>(me)] += v;
      }
      (void)rg;
    }(rig, comm, r, sums));
  }
  rig.sim.run();
  EXPECT_EQ(rig.sim.unfinished_processes(), 0u);
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ((*sums)[static_cast<std::size_t>(r)], 10.0 * n);
  }
}
