// The model-guided auto-tuner: candidate-grid enumeration, the
// successive-halving budget math, the -j determinism of the tune artifacts,
// and the end-to-end contract on the imbalanced-CFD schedule space — the
// tuned config must beat the static default on a fraction of an exhaustive
// sweep's runs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "exp/artifacts.hpp"
#include "exp/registry.hpp"
#include "opt/tuner.hpp"

using namespace zipper;
using namespace zipper::opt;
using core::sched::RouteKind;
using core::sched::SpillKind;

namespace {

/// The quick-mode imbalanced-CFD baseline of ablation_sched (6 producers ->
/// 4 consumers: the static contiguous map doubles half the consumers'
/// load), fetched from the registry so the tests track the figure.
exp::ScenarioSpec sched_base() {
  const auto* fig = exp::find_figure("ablation_sched");
  EXPECT_NE(fig, nullptr);
  auto base = fig->scenarios(false).front();
  base.label = "tune-test";
  return base;
}

int total_runs(const std::vector<int>& sizes) {
  return std::accumulate(sizes.begin(), sizes.end(), 0);
}

}  // namespace

// ------------------------------------------------------------ objectives --

TEST(Objective, TokensRoundTrip) {
  for (const auto o : {Objective::kEndToEnd, Objective::kProducerStall}) {
    const auto parsed = parse_objective(objective_token(o));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_EQ(parse_objective("end-to-end"), Objective::kEndToEnd);
  EXPECT_EQ(parse_objective("producer-stall"), Objective::kProducerStall);
  EXPECT_FALSE(parse_objective("latency").has_value());
}

// ----------------------------------------------------------- enumeration --

TEST(SearchSpace, DefaultGridSpansPolicyAxesOnce) {
  const auto base = sched_base();
  const auto cands = SearchSpace{}.enumerate(base);
  // 3 routes x 2 csteal x 2 ablk x (1 spill-off + 3 spill kinds) = 48.
  EXPECT_EQ(cands.size(), 48u);
  std::set<std::string> tokens;
  for (const auto& c : cands) tokens.insert(c.token());
  EXPECT_EQ(tokens.size(), cands.size()) << "duplicate candidate tokens";
  // The default configuration is the first grid point.
  EXPECT_EQ(cands.front().route, RouteKind::kStatic);
  EXPECT_FALSE(cands.front().spill_enabled);
  EXPECT_EQ(cands.front().block_bytes, base.zipper.block_bytes);
}

TEST(SearchSpace, NumericAxesMultiplyAndThresholdOnlyVariesSpill) {
  const auto base = sched_base();
  SearchSpace space;
  space.block_bytes = {512 * common::KiB, common::MiB};
  space.high_water = {0.25, 0.75};
  const auto cands = space.enumerate(base);
  // Per (route, csteal, ablk, block): 1 spill-off + 3 kinds x 2 thresholds.
  EXPECT_EQ(cands.size(), 3u * 2 * 2 * 2 * (1 + 3 * 2));
  std::set<std::string> tokens;
  for (const auto& c : cands) {
    tokens.insert(c.token());
    if (!c.spill_enabled) {
      // Spill-off candidates keep the base threshold: no duplicate spelling
      // of the same configuration.
      EXPECT_EQ(c.high_water, base.zipper.high_water);
    }
  }
  EXPECT_EQ(tokens.size(), cands.size());
}

TEST(SearchSpace, ApplySetsEveryKnob) {
  const auto base = sched_base();
  Candidate c;
  c.route = RouteKind::kLeastQueued;
  c.consumer_steal = true;
  c.adaptive_block = true;
  c.block_bytes = 2 * common::MiB;
  c.spill_enabled = true;
  c.spill = SpillKind::kHysteresis;
  c.high_water = 0.75;
  c.servers = 3;
  const auto s = c.apply(base);
  EXPECT_EQ(s.zipper.sched.route, RouteKind::kLeastQueued);
  EXPECT_TRUE(s.zipper.sched.consumer_steal);
  EXPECT_EQ(s.zipper.sched.block_size, core::sched::BlockSizeKind::kAdaptive);
  EXPECT_EQ(s.zipper.block_bytes, 2 * common::MiB);
  EXPECT_TRUE(s.zipper.enable_steal);
  EXPECT_EQ(s.zipper.sched.spill, SpillKind::kHysteresis);
  EXPECT_EQ(s.zipper.high_water, 0.75);
  ASSERT_TRUE(s.servers.has_value());
  EXPECT_EQ(*s.servers, 3);
  EXPECT_EQ(s.label, "tune/" + c.token());
}

// --------------------------------------------------------- halving math --

TEST(Halving, LadderFitsBudgetAndHalves) {
  const auto sizes = halving_rounds(144, 15, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 8);  // 8 + 4 + 2 = 14 <= 15; n0 = 9 would need 17
  EXPECT_EQ(sizes[1], 4);
  EXPECT_EQ(sizes[2], 2);
  EXPECT_LE(total_runs(sizes), 15);
}

TEST(Halving, EntrantsCappedAtGridSize) {
  const auto sizes = halving_rounds(4, 100, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(sizes[2], 1);
}

TEST(Halving, TinyBudgetDropsRounds) {
  // budget 2 cannot fund 3 rounds: the ladder shrinks to 2 single-run
  // rounds rather than overspending.
  const auto sizes = halving_rounds(48, 2, 3);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 1);
  EXPECT_TRUE(halving_rounds(48, 0, 3).empty());
  EXPECT_TRUE(halving_rounds(0, 10, 3).empty());
}

TEST(Halving, StepsLadderEndsAtFullFidelity) {
  const auto steps = halving_steps(10, 3);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], 4);  // ceil(10/3)
  EXPECT_EQ(steps[1], 7);  // ceil(20/3)
  EXPECT_EQ(steps[2], 10);
  // One round: straight to full fidelity. Degenerate base: never above it.
  EXPECT_EQ(halving_steps(10, 1), std::vector<int>{10});
  EXPECT_EQ(halving_steps(1, 3), (std::vector<int>{1, 1, 1}));
}

// ----------------------------------------------------------- tune runs ----

TEST(Tuner, RejectsNonZipperBaseAndTinyBudget) {
  auto base = sched_base();
  TuneOptions opts;
  opts.budget = 4;
  {
    auto no_method = base;
    no_method.method = std::nullopt;
    const auto rep = Tuner(no_method, SearchSpace{}, opts).run();
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("Zipper"), std::string::npos);
  }
  {
    TuneOptions tiny = opts;
    tiny.budget = 1;
    const auto rep = Tuner(base, SearchSpace{}, tiny).run();
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("budget"), std::string::npos);
  }
  {
    TuneOptions no_rounds = opts;
    no_rounds.rounds = 0;
    const auto rep = Tuner(base, SearchSpace{}, no_rounds).run();
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("rounds"), std::string::npos);
  }
}

TEST(Tuner, TuneCsvBitwiseIdenticalAcrossJobs) {
  const auto base = sched_base();
  SearchSpace space;  // 48 candidates; budget 8 -> a 4 -> 2 -> 1 ladder
  TuneOptions opts;
  opts.budget = 8;
  opts.jobs = 1;
  const auto r1 = Tuner(base, space, opts).run();
  opts.jobs = 4;
  const auto r4 = Tuner(base, space, opts).run();
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r4.ok);
  EXPECT_EQ(exp::to_csv(report_rows(r1)), exp::to_csv(report_rows(r4)));
  EXPECT_EQ(exp::to_json(report_rows(r1)), exp::to_json(report_rows(r4)));
  EXPECT_EQ(r1.chosen, r4.chosen);
}

TEST(Tuner, TunedConfigBeatsStaticDefaultOnImbalancedCfd) {
  // The acceptance contract: on ablation_sched's quick-mode base (fixed
  // seed by construction — the DES is deterministic), a 16-run budget must
  // find a config cutting producer stall >= 10% vs the static default,
  // spending at most half of what the exhaustive 48-candidate sweep would.
  const auto base = sched_base();
  TuneOptions opts;
  opts.objective = Objective::kProducerStall;
  opts.budget = 16;
  opts.jobs = 4;
  const auto rep = Tuner(base, SearchSpace{}, opts).run();
  ASSERT_TRUE(rep.ok) << rep.note;
  EXPECT_TRUE(rep.calib_from_trace);
  ASSERT_NE(rep.chosen_outcome(), nullptr)
      << "tuner kept the default configuration";
  EXPECT_GE(rep.improvement(), 0.10);
  EXPECT_LE(rep.sim_runs, static_cast<int>(rep.grid_size) / 2);
  // The winner was validated at full fidelity, so the comparison against
  // the probe is apples-to-apples.
  EXPECT_EQ(rep.chosen_outcome()->steps_simulated, base.steps);
  EXPECT_EQ(rep.chosen_outcome()->final_rank, 1);
}

TEST(Tuner, ReportRowsCarryTheGridAndTheChoice) {
  const auto base = sched_base();
  TuneOptions opts;
  opts.budget = 6;
  const auto rep = Tuner(base, SearchSpace{}, opts).run();
  ASSERT_TRUE(rep.ok);
  const auto rows = report_rows(rep);
  ASSERT_EQ(rows.size(), rep.outcomes.size() + 1);
  EXPECT_EQ(rows.front().label, "default");
  EXPECT_EQ(rows.front().get("simulated_s"), rep.default_objective);
  int chosen_rows = 0;
  for (const auto& r : rows) chosen_rows += r.get("chosen") > 0 ? 1 : 0;
  EXPECT_EQ(chosen_rows, 1) << "exactly one row must be marked chosen";
  // Pruned candidates keep NaN simulated cells (empty in CSV), never 0 —
  // a 0 would read as a perfect run.
  bool saw_pruned = false;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rep.outcomes[i - 1].rounds_survived == 0) {
      saw_pruned = true;
      EXPECT_TRUE(std::isnan(rows[i].get("simulated_s")));
    }
  }
  EXPECT_TRUE(saw_pruned);
}
