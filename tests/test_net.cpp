// Tests for the fat-tree fabric model: latency/bandwidth arithmetic, port
// contention, multipath spreading, counters, and XmitWait semantics.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "net/fabric.hpp"
#include "sim/simulation.hpp"

using namespace zipper;
using namespace zipper::net;
using zipper::sim::Simulation;
using zipper::sim::Task;
using zipper::sim::Time;

namespace {

FabricConfig small_config() {
  FabricConfig cfg;
  cfg.num_hosts = 8;
  cfg.hosts_per_leaf = 4;
  cfg.num_core_switches = 2;
  cfg.nic_bandwidth = 1e9;   // 1 byte/ns
  cfg.port_bandwidth = 1e9;  // 1 byte/ns
  cfg.shm_bandwidth = 2e9;
  cfg.hop_latency = 100;
  cfg.software_overhead = 0;
  return cfg;
}

Task one_transfer(Fabric& f, int src, int dst, std::uint64_t bytes, Time& done,
                  Simulation& sim, TrafficClass cls = TrafficClass::kMessage) {
  co_await f.transfer(src, dst, bytes, cls);
  done = sim.now();
}

}  // namespace

TEST(Fabric, SameLeafLatencyAndBandwidth) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time done = -1;
  // hosts 0 and 1 share leaf 0: nic_tx (1000ns) + hop + nic_rx (1000ns)
  sim.spawn(one_transfer(f, 0, 1, 1000, done, sim));
  sim.run();
  EXPECT_EQ(done, 1000 + 100 + 1000);
}

TEST(Fabric, CrossLeafAddsCoreHops) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time done = -1;
  // hosts 0 (leaf 0) and 4 (leaf 1): 4 store-and-forward stages + 3 hops
  sim.spawn(one_transfer(f, 0, 4, 1000, done, sim));
  sim.run();
  EXPECT_EQ(done, 4 * 1000 + 3 * 100);
}

TEST(Fabric, SameHostUsesShm) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time done = -1;
  sim.spawn(one_transfer(f, 3, 3, 2000, done, sim));
  sim.run();
  EXPECT_EQ(done, 1000);  // 2000 bytes at 2 bytes/ns, no hops
  EXPECT_EQ(f.counters(3).xmit_data, 0u);  // shm does not touch the NIC
}

TEST(Fabric, SoftwareOverheadCharged) {
  Simulation sim;
  auto cfg = small_config();
  cfg.software_overhead = 500;
  Fabric f(sim, cfg);
  Time done = -1;
  sim.spawn(one_transfer(f, 0, 1, 1000, done, sim));
  sim.run();
  EXPECT_EQ(done, (500 + 1000) + 100 + 1000);
}

TEST(Fabric, TxContentionSerializesSenders) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d1 = -1, d2 = -1;
  sim.spawn(one_transfer(f, 0, 1, 1000, d1, sim));
  sim.spawn(one_transfer(f, 0, 2, 1000, d2, sim));
  sim.run();
  // Second message waits 1000ns at host 0's NIC TX.
  EXPECT_EQ(d1, 2100);
  EXPECT_EQ(d2, 3100);
}

TEST(Fabric, RxIncastSerializesReceivers) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d1 = -1, d2 = -1;
  sim.spawn(one_transfer(f, 0, 2, 1000, d1, sim));
  sim.spawn(one_transfer(f, 1, 2, 1000, d2, sim));
  sim.run();
  // Both TX in parallel, but host 2's RX serializes the two messages.
  EXPECT_EQ(d1, 2100);
  EXPECT_EQ(d2, 3100);
}

TEST(Fabric, XmitWaitChargedToSourceOnRxCongestion) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d1 = -1, d2 = -1;
  sim.spawn(one_transfer(f, 0, 2, 1000, d1, sim));
  sim.spawn(one_transfer(f, 1, 2, 1000, d2, sim));
  sim.run();
  // Host 1's message waited 1000ns at host 2's RX; the wait is charged to
  // the *source* (credit backpressure), in 8-byte flit units: 1000ns at
  // 1 byte/ns = 125 flits.
  EXPECT_EQ(f.counters(0).xmit_wait, 0u);
  EXPECT_EQ(f.counters(1).xmit_wait, 125u);
}

TEST(Fabric, IoClassNotCountedInXmitWait) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d1 = -1, d2 = -1;
  sim.spawn(one_transfer(f, 0, 2, 1000, d1, sim, TrafficClass::kIo));
  sim.spawn(one_transfer(f, 1, 2, 1000, d2, sim, TrafficClass::kIo));
  sim.run();
  EXPECT_EQ(f.counters(0).xmit_wait, 0u);
  EXPECT_EQ(f.counters(1).xmit_wait, 0u);
  EXPECT_EQ(d2, 3100);  // but bandwidth is still consumed
}

TEST(Fabric, DataAndPacketCounters) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d = -1;
  sim.spawn(one_transfer(f, 0, 5, 4096, d, sim));
  sim.run();
  EXPECT_EQ(f.counters(0).xmit_data, 4096u);
  EXPECT_EQ(f.counters(0).xmit_pkts, 1u);
  EXPECT_EQ(f.counters(5).rcv_data, 4096u);
  EXPECT_EQ(f.counters(5).rcv_pkts, 1u);
  EXPECT_EQ(f.counters(5).xmit_data, 0u);
}

TEST(Fabric, MultipathSpreadsAcrossCores) {
  Simulation sim;
  auto cfg = small_config();
  cfg.num_core_switches = 4;
  Fabric f(sim, cfg);
  // 8 concurrent cross-leaf messages from distinct sources: with 4 cores
  // and round-robin selection they must not all pick the same core, so the
  // makespan beats the single-core serialization bound.
  std::vector<Time> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    sim.spawn(one_transfer(f, i, 4 + i, 8000, done[static_cast<std::size_t>(i)], sim));
  }
  sim.run();
  const Time makespan = *std::max_element(done.begin(), done.end());
  // Perfect spreading: each message runs unobstructed = 4*8000 + 300.
  EXPECT_EQ(makespan, 4 * 8000 + 300);
}

TEST(Fabric, FineGrainBlocksPipelineAcrossHops) {
  // Cornerstone of the paper's §4: sending D bytes as many fine blocks
  // pipelines across store-and-forward hops, while one monolithic burst
  // serializes. 16 x 1000B vs 1 x 16000B, cross-leaf.
  auto run = [](int nblocks, std::uint64_t block_bytes) {
    Simulation sim;
    Fabric f(sim, small_config());
    std::vector<Time> done(static_cast<std::size_t>(nblocks), -1);
    for (int i = 0; i < nblocks; ++i) {
      sim.spawn(one_transfer(f, 0, 4, block_bytes, done[static_cast<std::size_t>(i)],
                             sim));
    }
    sim.run();
    return *std::max_element(done.begin(), done.end());
  };
  const Time burst = run(1, 16000);
  const Time blocks = run(16, 1000);
  EXPECT_LT(blocks, burst);
  // Pipelined: TX serializes 16 blocks (16000ns) then last block crosses the
  // remaining 3 stages: + 3*1000 + 300 latency.
  EXPECT_EQ(blocks, 16000 + 3 * 1000 + 300);
  EXPECT_EQ(burst, 4 * 16000 + 300);
}

TEST(Fabric, TotalXmitWaitSumsRange) {
  Simulation sim;
  Fabric f(sim, small_config());
  Time d1, d2, d3;
  sim.spawn(one_transfer(f, 0, 3, 1000, d1, sim));
  sim.spawn(one_transfer(f, 1, 3, 1000, d2, sim));
  sim.spawn(one_transfer(f, 2, 3, 1000, d3, sim));
  sim.run();
  EXPECT_EQ(f.total_xmit_wait(0, 3),
            f.counters(0).xmit_wait + f.counters(1).xmit_wait + f.counters(2).xmit_wait);
  EXPECT_GT(f.total_xmit_wait(0, 3), 0u);
}
