// Property and differential tests over the N-stage pipeline graph
// (workflow/pipeline.hpp + pipeline_coupling.hpp).
//
// Three nets:
//   * Unit tests on the PipelineSpec data model: token round-trips,
//     make_chain shapes/names, validation errors, rank resolution, and the
//     sweep-grid pipeline axes.
//   * Randomized seeded pipeline graphs executed end-to-end through
//     PipelineCoupling: every edge delivers exactly once, conserves blocks
//     and bytes hop-to-hop, keeps per-(edge, producer, consumer) network
//     FIFO order, and replays deterministically — across random edge
//     methods, routes, spills, stealing, and preserve.
//   * The lowering contract: a depth-1 all-default chain is trivial() and
//     run_scenario routes it onto the exact legacy code path, so every
//     registered figure's quick-mode CSV is byte-identical with and without
//     it (the golden harness pins the same property in CI).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "exp/artifacts.hpp"
#include "exp/engine.hpp"
#include "exp/grid.hpp"
#include "exp/registry.hpp"
#include "workflow/pipeline.hpp"
#include "workflow/pipeline_coupling.hpp"
#include "workflow/runner.hpp"

using namespace zipper;
using common::KiB;
using common::MiB;
using core::BlockId;
using workflow::EdgeMethod;
using workflow::PipelineSpec;
using workflow::make_chain;

// ----------------------------------------------------- data-model units ----

TEST(PipelineSpecUnit, EdgeMethodTokensRoundTrip) {
  for (EdgeMethod m : {EdgeMethod::kZip, EdgeMethod::kStaged, EdgeMethod::kPfs}) {
    const auto back = workflow::parse_edge_method(workflow::edge_method_token(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(workflow::parse_edge_method("bogus").has_value());
  EXPECT_FALSE(workflow::parse_edge_method("").has_value());
}

TEST(PipelineSpecUnit, MakeChainShapesAndNames) {
  const auto d1 = make_chain(1);
  ASSERT_EQ(d1.stages.size(), 2u);
  EXPECT_EQ(d1.stages[0].name, "sim");
  EXPECT_EQ(d1.stages[1].name, "analyze");
  EXPECT_TRUE(d1.enabled);
  EXPECT_TRUE(d1.trivial());

  const auto d2 = make_chain(2);
  ASSERT_EQ(d2.stages.size(), 3u);
  EXPECT_EQ(d2.stages[1].name, "reduce");
  EXPECT_EQ(d2.stages[2].name, "analyze");
  EXPECT_FALSE(d2.trivial());

  const auto d3 = make_chain(3);
  ASSERT_EQ(d3.stages.size(), 4u);
  EXPECT_EQ(d3.stages[1].name, "reduce");
  EXPECT_EQ(d3.stages[2].name, "analyze");
  EXPECT_EQ(d3.stages[3].name, "store");

  const auto d4 = make_chain(4);
  ASSERT_EQ(d4.stages.size(), 5u);
  EXPECT_EQ(d4.stages[1].name, "reduce");
  EXPECT_EQ(d4.stages[2].name, "stage2");
  EXPECT_EQ(d4.stages[3].name, "analyze");
  EXPECT_EQ(d4.stages[4].name, "store");

  // Compression rides every edge but the first; edge 0 is the simulation's
  // own output.
  const auto cx = make_chain(3, 2, 4.0);
  ASSERT_EQ(cx.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(cx.edges[0].compression, 1.0);
  EXPECT_DOUBLE_EQ(cx.edges[1].compression, 4.0);
  EXPECT_DOUBLE_EQ(cx.edges[2].compression, 4.0);
  EXPECT_EQ(cx.fan, 2);
  EXPECT_NO_THROW(cx.validate());
}

TEST(PipelineSpecUnit, TrivialDetection) {
  EXPECT_TRUE(PipelineSpec{}.trivial());  // disabled == legacy path
  EXPECT_TRUE(make_chain(1).trivial());
  EXPECT_TRUE(make_chain(1, 4, 8.0).trivial());  // fan/compress never touch d1
  EXPECT_FALSE(make_chain(2).trivial());

  auto staged = make_chain(1);
  staged.edges[0].method = EdgeMethod::kStaged;
  EXPECT_FALSE(staged.trivial());

  auto pinned = make_chain(1);
  pinned.stages[1].ranks = 3;
  EXPECT_FALSE(pinned.trivial());

  auto weighted = make_chain(1);
  weighted.stages[1].work_factor = 2.0;
  EXPECT_FALSE(weighted.trivial());
}

TEST(PipelineSpecUnit, ValidateRejectsInconsistentGraphs) {
  EXPECT_NO_THROW(PipelineSpec{}.validate());  // disabled: no-op

  auto one_stage = make_chain(1);
  one_stage.stages.pop_back();
  one_stage.edges.clear();
  EXPECT_THROW(one_stage.validate(), std::invalid_argument);

  auto mismatch = make_chain(2);
  mismatch.edges.pop_back();
  EXPECT_THROW(mismatch.validate(), std::invalid_argument);

  auto bad_fan = make_chain(2);
  bad_fan.fan = 0;
  EXPECT_THROW(bad_fan.validate(), std::invalid_argument);

  auto bad_chaos = make_chain(2);
  bad_chaos.chaos_edge = 2;
  EXPECT_THROW(bad_chaos.validate(), std::invalid_argument);

  auto cx0 = make_chain(2);
  cx0.edges[0].compression = 2.0;  // edge 0 must stay at 1
  EXPECT_THROW(cx0.validate(), std::invalid_argument);

  auto cx_neg = make_chain(2);
  cx_neg.edges[1].compression = 0.0;
  EXPECT_THROW(cx_neg.validate(), std::invalid_argument);

  auto bad_ranks = make_chain(2);
  bad_ranks.stages[1].ranks = -1;
  EXPECT_THROW(bad_ranks.validate(), std::invalid_argument);

  auto bad_wf = make_chain(2);
  bad_wf.stages[2].work_factor = 0.0;
  EXPECT_THROW(bad_wf.validate(), std::invalid_argument);
}

TEST(PipelineSpecUnit, ResolvedRanksFollowTheFanRule) {
  const auto d3 = make_chain(3, 2);
  EXPECT_EQ(d3.resolved_ranks(8, 4), (std::vector<int>{8, 4, 2, 1}));
  // Deep fan-in floors at one rank.
  const auto d4 = make_chain(4, 4);
  EXPECT_EQ(d4.resolved_ranks(8, 4), (std::vector<int>{8, 4, 1, 1, 1}));
  // Pinned stage ranks override the derivation.
  auto pinned = make_chain(3, 2);
  pinned.stages[2].ranks = 5;
  EXPECT_EQ(pinned.resolved_ranks(8, 4), (std::vector<int>{8, 4, 5, 2}));
}

TEST(PipelineSpecUnit, SweepGridPipelineAxes) {
  exp::SweepGrid grid;
  grid.base.method = transports::Method::kZipper;
  grid.pipeline_stages = {1, 2};
  grid.pipeline_fan = {1, 2};
  EXPECT_EQ(grid.size(), 4u);
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 4u);
  for (const auto& s : specs) {
    EXPECT_TRUE(s.pipeline.enabled);
    EXPECT_NO_THROW(s.pipeline.validate());
  }
  EXPECT_NE(specs[0].label.find("/stages1/fan1"), std::string::npos);
  EXPECT_NE(specs[3].label.find("/stages2/fan2"), std::string::npos);
  EXPECT_TRUE(specs[0].pipeline.trivial());   // --stages 1 is the legacy path
  EXPECT_FALSE(specs[3].pipeline.trivial());
  EXPECT_EQ(specs[3].pipeline.fan, 2);

  // No pipeline axes: the base spec's (disabled) pipeline rides through.
  exp::SweepGrid none;
  none.steps = {2, 4};
  for (const auto& s : none.expand()) EXPECT_FALSE(s.pipeline.enabled);
}

// ------------------------------------- randomized pipeline-graph runs ----

namespace {

apps::WorkloadProfile pipeline_profile() {
  apps::WorkloadProfile p;
  p.name = "pipeline-sweep";
  p.steps = 3;
  p.bytes_per_rank_per_step = 2 * MiB + 256 * KiB;  // non-divisible split
  p.t_collision = sim::from_seconds(0.02);
  p.t_update = sim::from_seconds(0.01);
  p.analysis_ns_per_byte = 30.0;  // consumers lag: real backpressure
  return p;
}

struct EdgeDelivery {
  int edge;
  int consumer;
  core::BlockHeader h;
};

struct PipeOutcome {
  PipelineSpec spec;
  int producers = 0;
  double end_to_end_s = 0;
  std::vector<core::dsim::SimZipperStats> stats;  // per edge
  std::vector<EdgeDelivery> deliveries;
};

/// Builds a random (but seed-deterministic) pipeline graph + schedule
/// configuration and runs it end-to-end through PipelineCoupling.
PipeOutcome run_random_pipeline(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };

  auto pl = make_chain(/*depth=*/pick(2, 3), /*fan=*/pick(1, 2),
                       /*compress=*/static_cast<double>(pick(1, 2)),
                       /*staging=*/pick(0, 1) == 1);
  const EdgeMethod methods[] = {EdgeMethod::kZip, EdgeMethod::kStaged,
                                EdgeMethod::kPfs};
  for (std::size_t e = 1; e < pl.edges.size(); ++e) {
    pl.edges[e].method = methods[pick(0, 2)];
  }
  pl.validate();

  core::dsim::SimZipperConfig z;
  z.block_bytes = 512 * KiB;
  z.producer_buffer_blocks = 4;
  z.consumer_buffer_blocks = 8;
  z.sender_window = 2;
  z.enable_steal = pick(0, 1) == 1;
  z.preserve = pick(0, 1) == 1;
  const core::sched::RouteKind routes[] = {core::sched::RouteKind::kStatic,
                                           core::sched::RouteKind::kRoundRobin,
                                           core::sched::RouteKind::kLeastQueued};
  const core::sched::SpillKind spills[] = {core::sched::SpillKind::kHighWater,
                                           core::sched::SpillKind::kHysteresis,
                                           core::sched::SpillKind::kAdaptive};
  z.sched.route = routes[pick(0, 2)];
  z.sched.spill = spills[pick(0, 2)];
  z.sched.consumer_steal = pick(0, 1) == 1;
  z.sched.steal_min_queue = 2;

  const int P = pick(3, 5);
  const int Q = pick(2, 3);
  const auto ranks = pl.resolved_ranks(P, Q);
  int servers = 0;
  for (std::size_t i = 2; i < ranks.size(); ++i) servers += ranks[i];

  const auto prof = pipeline_profile();
  workflow::Layout layout{P, ranks[1], servers};
  workflow::Cluster cluster(workflow::ClusterSpec::bridges(), layout);
  cluster.recorder.set_enabled(false);
  workflow::PipelineCoupling coupling(cluster, prof, z, pl);

  PipeOutcome out;
  out.spec = pl;
  out.producers = P;
  coupling.on_edge_analyzed = [&out](int e, int c, const core::BlockHeader& h) {
    out.deliveries.push_back({e, c, h});
  };
  out.end_to_end_s = workflow::run_workflow(cluster, prof, &coupling).end_to_end_s;
  for (int e = 0; e < coupling.num_edges(); ++e) {
    out.stats.push_back(coupling.edge_stats(e));
  }
  return out;
}

/// The byte count edge e+1's forwarder emits for an edge-e block.
std::uint64_t forwarded_bytes(std::uint64_t bytes, double compression) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(bytes) / compression));
}

}  // namespace

class PipelineGraphs : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(SeededGraphs, PipelineGraphs,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(PipelineGraphs, EveryEdgeDeliversExactlyOnce) {
  const auto out = run_random_pipeline(GetParam());
  const auto prof = pipeline_profile();
  const int E = out.spec.num_edges();

  std::vector<std::set<BlockId>> seen(static_cast<std::size_t>(E));
  std::vector<std::uint64_t> count(static_cast<std::size_t>(E), 0);
  for (const auto& d : out.deliveries) {
    ASSERT_GE(d.edge, 0);
    ASSERT_LT(d.edge, E);
    EXPECT_TRUE(seen[static_cast<std::size_t>(d.edge)].insert(d.h.id).second)
        << "edge " << d.edge << ": " << d.h.id.to_string() << " delivered twice";
    ++count[static_cast<std::size_t>(d.edge)];
  }
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(out.producers) *
                                    prof.steps * prof.bytes_per_rank_per_step;
  for (int e = 0; e < E; ++e) {
    const auto& s = out.stats[static_cast<std::size_t>(e)];
    EXPECT_EQ(s.blocks_analyzed, s.blocks_total) << "edge " << e;
    EXPECT_EQ(count[static_cast<std::size_t>(e)], s.blocks_analyzed)
        << "edge " << e;
    EXPECT_GT(s.blocks_total, 0u) << "edge " << e;
  }
  // Edge 0 carries the simulation's full output.
  EXPECT_EQ(out.stats[0].bytes_via_network + out.stats[0].bytes_via_pfs,
            total_bytes);
}

TEST_P(PipelineGraphs, HopToHopConservation) {
  const auto out = run_random_pipeline(GetParam());
  const int E = out.spec.num_edges();
  // Blocks and bytes leaving edge e's analysis enter edge e+1 re-stamped,
  // scaled by the edge's compression — nothing dropped, nothing invented.
  for (int e = 0; e + 1 < E; ++e) {
    std::uint64_t fwd_blocks = 0, fwd_bytes = 0;
    for (const auto& d : out.deliveries) {
      if (d.edge != e) continue;
      ++fwd_blocks;
      fwd_bytes += forwarded_bytes(
          d.h.bytes, out.spec.edges[static_cast<std::size_t>(e) + 1].compression);
    }
    const auto& down = out.stats[static_cast<std::size_t>(e) + 1];
    EXPECT_EQ(down.blocks_total, fwd_blocks) << "edge " << e + 1;
    EXPECT_EQ(down.bytes_via_network + down.bytes_via_pfs, fwd_bytes)
        << "edge " << e + 1;
  }
}

TEST_P(PipelineGraphs, PerEdgeNetworkFifoOrderPerProducerConsumerPair) {
  const auto out = run_random_pipeline(GetParam());
  // Within one edge, the network channel never reorders one (local)
  // producer's blocks as seen by any one consumer — stealing moves whole
  // ready blocks, and a stolen subsequence of a FIFO is still in order.
  // Spilled blocks ride the reader path, which reorders by design.
  //
  // The FIFO key differs by edge: the simulation stamps {step, p, b} with b
  // resetting each step, while interior forwarders stamp a never-resetting
  // seq as the index and carry the *upstream* step (which can interleave
  // across the upstream consumer's sources) — so deeper edges order by
  // index alone.
  const auto fifo_key = [](int edge, const BlockId& id) {
    return edge == 0 ? std::pair{id.step, id.index} : std::pair{0, id.index};
  };
  std::map<std::tuple<int, int, int>,  // (edge, producer, consumer)
           std::pair<std::int32_t, std::int32_t>>
      last;
  for (const auto& d : out.deliveries) {
    if (d.h.on_disk) continue;
    const std::tuple<int, int, int> key{d.edge, d.h.id.producer, d.consumer};
    const auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_LT(it->second, fifo_key(d.edge, d.h.id))
          << "edge " << d.edge << " producer " << d.h.id.producer
          << " -> consumer " << d.consumer << " went backwards";
    }
    last[key] = fifo_key(d.edge, d.h.id);
  }
}

TEST_P(PipelineGraphs, DeterministicReplay) {
  const auto a = run_random_pipeline(GetParam());
  const auto b = run_random_pipeline(GetParam());
  EXPECT_EQ(a.end_to_end_s, b.end_to_end_s);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].edge, b.deliveries[i].edge);
    EXPECT_EQ(a.deliveries[i].consumer, b.deliveries[i].consumer);
    EXPECT_EQ(a.deliveries[i].h.id, b.deliveries[i].h.id);
    EXPECT_EQ(a.deliveries[i].h.bytes, b.deliveries[i].h.bytes);
  }
}

// ------------------------------------------------- the lowering contract ----

TEST(PipelineDifferential, TrivialChainIsByteIdenticalAcrossAllFigures) {
  // A depth-1 all-default chain must lower onto the exact legacy code path:
  // for every registered figure, quick-mode results are byte-identical with
  // and without it. Scenarios that already carry a real pipeline (the hybrid
  // figures) are excluded — overwriting their graph would change the
  // experiment, not test the lowering.
  for (const auto& fig : exp::registry()) {
    std::vector<exp::ScenarioSpec> specs;
    for (auto& s : fig.scenarios(false)) {
      if (!s.pipeline.enabled) specs.push_back(std::move(s));
    }
    if (specs.empty()) continue;
    auto lowered = specs;
    for (auto& s : lowered) s.pipeline = make_chain(1);

    exp::SweepOptions so;
    const auto a = exp::run_sweep(specs, so);
    const auto b = exp::run_sweep(lowered, so);
    EXPECT_EQ(exp::to_csv(a), exp::to_csv(b)) << fig.name;
    EXPECT_EQ(exp::to_json(a), exp::to_json(b)) << fig.name;
  }
}
