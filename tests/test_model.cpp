// Tests for the analytic performance model and pipeline schedules (§4.4,
// Figures 3 & 11).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "model/perf_model.hpp"

using namespace zipper::model;
using zipper::common::MiB;

namespace {
ModelInput basic() {
  ModelInput in;
  in.total_bytes = 1024 * MiB;
  in.block_bytes = MiB;
  in.producers = 8;
  in.consumers = 4;
  in.tc_s = 0.004;
  in.tm_s = 0.002;
  in.ta_s = 0.003;
  return in;
}
}  // namespace

TEST(Model, BlockCount) {
  const auto p = predict(basic());
  EXPECT_EQ(p.num_blocks, 1024u);
}

TEST(Model, EndToEndIsMaxStage) {
  const auto p = predict(basic());
  EXPECT_DOUBLE_EQ(p.t_comp, 0.004 * 1024 / 8);
  EXPECT_DOUBLE_EQ(p.t_transfer, 0.002 * 1024 / 8);
  EXPECT_DOUBLE_EQ(p.t_analysis, 0.003 * 1024 / 4);
  EXPECT_DOUBLE_EQ(p.t_end_to_end,
                   std::max({p.t_comp, p.t_transfer, p.t_analysis}));
  EXPECT_EQ(p.dominant, "analysis");
}

TEST(Model, DominantSwitchesWithComputeTime) {
  auto in = basic();
  in.tc_s = 0.1;
  const auto p = predict(in);
  EXPECT_EQ(p.dominant, "simulation");
  EXPECT_DOUBLE_EQ(p.t_end_to_end, p.t_comp);
}

TEST(Model, PreserveAddsStoreStage) {
  auto in = basic();
  in.preserve = true;
  in.pfs_write_bandwidth = 1e6;  // absurdly slow PFS dominates
  const auto p = predict(in);
  EXPECT_EQ(p.dominant, "store");
  EXPECT_DOUBLE_EQ(p.t_store, static_cast<double>(in.total_bytes) / 1e6);
}

TEST(Model, NoPreserveHasNoStoreTime) {
  const auto p = predict(basic());
  EXPECT_DOUBLE_EQ(p.t_store, 0.0);
}

TEST(Model, PartialLastBlockRoundsUp) {
  auto in = basic();
  in.total_bytes = 10 * MiB + 1;
  const auto p = predict(in);
  EXPECT_EQ(p.num_blocks, 11u);
}

TEST(Schedule, NonIntegratedIsSumOfStages) {
  const double stages[4] = {1, 2, 3, 4};
  const auto s = schedule_non_integrated(7, stages);
  EXPECT_DOUBLE_EQ(makespan(s), 7 * (1 + 2 + 3 + 4));
  EXPECT_EQ(s.size(), 4u * 7u);
}

TEST(Schedule, IntegratedApproachesMaxStageBound) {
  // Fig 11: with pipelining, makespan -> blocks * max_stage + fill.
  const double stages[4] = {1, 1, 1, 1};
  const auto s = schedule_integrated(100, stages);
  EXPECT_DOUBLE_EQ(makespan(s), 100 + 3);  // nb * max + (stages-1) fill
  const auto n = schedule_non_integrated(100, stages);
  EXPECT_GT(makespan(n) / makespan(s), 3.5);
}

TEST(Schedule, IntegratedRespectsDependencies) {
  const double stages[4] = {2, 1, 3, 1};
  const auto s = schedule_integrated(10, stages);
  // Block b's stage k must start after block b's stage k-1 ends.
  double end_prev[10][4] = {};
  for (const auto& span : s) end_prev[span.block][span.stage] = span.t1;
  for (const auto& span : s) {
    if (span.stage > 0) {
      EXPECT_GE(span.t0, end_prev[span.block][span.stage - 1] - 1e-12);
    }
  }
}

TEST(Schedule, IntegratedStageUnitsNeverOverlap) {
  const double stages[4] = {2, 3, 1, 2};
  const auto s = schedule_integrated(20, stages);
  // Within one stage, spans must be disjoint (one functional unit per stage).
  for (int stage = 0; stage < 4; ++stage) {
    double last_end = -1;
    for (const auto& span : s) {
      if (span.stage != stage) continue;
      EXPECT_GE(span.t0, last_end - 1e-12);
      last_end = span.t1;
    }
  }
}

TEST(Schedule, SingleBlockDegeneratesToSum) {
  const double stages[4] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(makespan(schedule_integrated(1, stages)), 10.0);
  EXPECT_DOUBLE_EQ(makespan(schedule_non_integrated(1, stages)), 10.0);
}
