// Tests for the analytic performance model, pipeline schedules (§4.4,
// Figures 3 & 11), and the trace-driven calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "model/calibrate.hpp"
#include "model/perf_model.hpp"

using namespace zipper::model;
using zipper::common::MiB;

namespace {
ModelInput basic() {
  ModelInput in;
  in.total_bytes = 1024 * MiB;
  in.block_bytes = MiB;
  in.producers = 8;
  in.consumers = 4;
  in.tc_s = 0.004;
  in.tm_s = 0.002;
  in.ta_s = 0.003;
  return in;
}
}  // namespace

TEST(Model, BlockCount) {
  const auto p = predict(basic());
  EXPECT_EQ(p.num_blocks, 1024u);
}

TEST(Model, EndToEndIsMaxStage) {
  const auto p = predict(basic());
  EXPECT_DOUBLE_EQ(p.t_comp, 0.004 * 1024 / 8);
  EXPECT_DOUBLE_EQ(p.t_transfer, 0.002 * 1024 / 8);
  EXPECT_DOUBLE_EQ(p.t_analysis, 0.003 * 1024 / 4);
  EXPECT_DOUBLE_EQ(p.t_end_to_end,
                   std::max({p.t_comp, p.t_transfer, p.t_analysis}));
  EXPECT_EQ(p.dominant, "analysis");
}

TEST(Model, DominantSwitchesWithComputeTime) {
  auto in = basic();
  in.tc_s = 0.1;
  const auto p = predict(in);
  EXPECT_EQ(p.dominant, "simulation");
  EXPECT_DOUBLE_EQ(p.t_end_to_end, p.t_comp);
}

TEST(Model, AnalysisLoadFactorScalesTheAnalysisStage) {
  // The even-split model times the analysis stage by Q; a pinned routing
  // that loads the busiest consumer 2x finishes only when it does.
  auto in = basic();
  const auto even = predict(in);
  in.analysis_load_factor = 2.0;
  const auto skewed = predict(in);
  EXPECT_DOUBLE_EQ(skewed.t_analysis, 2.0 * even.t_analysis);
  EXPECT_DOUBLE_EQ(skewed.t_comp, even.t_comp);
  EXPECT_DOUBLE_EQ(skewed.t_transfer, even.t_transfer);
  EXPECT_DOUBLE_EQ(skewed.t_end_to_end,
                   std::max({skewed.t_comp, skewed.t_transfer,
                             skewed.t_analysis}));
}

TEST(Model, PreserveAddsStoreStage) {
  auto in = basic();
  in.preserve = true;
  in.pfs_write_bandwidth = 1e6;  // absurdly slow PFS dominates
  const auto p = predict(in);
  EXPECT_EQ(p.dominant, "store");
  EXPECT_DOUBLE_EQ(p.t_store, static_cast<double>(in.total_bytes) / 1e6);
}

TEST(Model, NoPreserveHasNoStoreTime) {
  const auto p = predict(basic());
  EXPECT_DOUBLE_EQ(p.t_store, 0.0);
}

TEST(Model, PartialLastBlockRoundsUp) {
  auto in = basic();
  in.total_bytes = 10 * MiB + 1;
  const auto p = predict(in);
  EXPECT_EQ(p.num_blocks, 11u);
}

// ---------------------------------------------- regression: dominant tie ----

TEST(Model, DominantTieReportsUpstreamStage) {
  auto in = basic();
  in.tc_s = 0.01;
  in.tm_s = 0.01;  // t_comp == t_transfer: was reported as "transfer"
  in.ta_s = 0.001;
  const auto p = predict(in);
  EXPECT_DOUBLE_EQ(p.t_comp, p.t_transfer);
  EXPECT_EQ(p.dominant, "simulation");
}

TEST(Model, DominantTransferAnalysisTieReportsTransfer) {
  auto in = basic();
  in.tc_s = 0.001;
  in.tm_s = 0.004;
  in.ta_s = 0.002;  // ta*nb/Q == tm*nb/P with P=8, Q=4
  const auto p = predict(in);
  EXPECT_DOUBLE_EQ(p.t_transfer, p.t_analysis);
  EXPECT_EQ(p.dominant, "transfer");
}

TEST(Model, ZeroByteInputHasNoDominantStage) {
  auto in = basic();
  in.total_bytes = 0;  // was reported as "analysis" via the if-fallthrough
  const auto p = predict(in);
  EXPECT_EQ(p.num_blocks, 0u);
  EXPECT_DOUBLE_EQ(p.t_end_to_end, 0.0);
  EXPECT_EQ(p.dominant, "none");
}

// ------------------------------------------ regression: relative_error -----

TEST(Model, RelativeErrorIsNaNForZeroPredictionNonzeroMeasurement) {
  auto in = basic();
  in.total_bytes = 0;
  const auto p = predict(in);
  EXPECT_TRUE(std::isnan(relative_error(5.0, p)));
  EXPECT_DOUBLE_EQ(relative_error(0.0, p), 0.0);
}

TEST(Model, RelativeErrorSignedAgainstPrediction) {
  const auto p = predict(basic());
  EXPECT_GT(relative_error(p.t_end_to_end * 1.1, p), 0.0);
  EXPECT_LT(relative_error(p.t_end_to_end * 0.9, p), 0.0);
  EXPECT_NEAR(relative_error(p.t_end_to_end, p), 0.0, 1e-12);
}

// ------------------------------------------------------------ calibration --

namespace {

/// The stage totals a run of `in` would produce under the model's own
/// equations — the exact fixed point fit() must recover.
TraceObservation observation_of(const ModelInput& in) {
  const auto p = predict(in);
  TraceObservation obs;
  obs.total_bytes = in.total_bytes;
  obs.producers = in.producers;
  obs.consumers = in.consumers;
  obs.compute_total_s = p.t_comp * in.producers;
  obs.transfer_total_s = p.t_transfer * in.producers;
  obs.analysis_total_s = p.t_analysis * in.consumers;
  obs.preserve = in.preserve;
  if (in.preserve) obs.store_total_s = p.t_store * in.consumers;
  return obs;
}

}  // namespace

TEST(Calibrate, RoundTripRecoversThePrediction) {
  const auto in = basic();
  const auto truth = predict(in);
  const auto c = fit(observation_of(in));
  ASSERT_TRUE(c.valid);
  const auto fitted = calibrated_input(c, in.total_bytes, in.block_bytes,
                                       in.producers, in.consumers, false);
  const auto p = predict(fitted);
  EXPECT_NEAR(p.t_comp, truth.t_comp, 1e-12);
  EXPECT_NEAR(p.t_transfer, truth.t_transfer, 1e-12);
  EXPECT_NEAR(p.t_analysis, truth.t_analysis, 1e-12);
  EXPECT_NEAR(p.t_end_to_end, truth.t_end_to_end, 1e-12);
  EXPECT_EQ(p.dominant, truth.dominant);
}

TEST(Calibrate, PreserveModeFitsPfsBandwidth) {
  auto in = basic();
  in.preserve = true;
  in.pfs_write_bandwidth = 3.5e9;
  const auto c = fit(observation_of(in));
  ASSERT_TRUE(c.valid);
  EXPECT_NEAR(c.pfs_write_bandwidth / 3.5e9, 1.0, 1e-12);
  const auto p = predict(calibrated_input(c, in.total_bytes, in.block_bytes,
                                          in.producers, in.consumers, true));
  EXPECT_NEAR(p.t_store, predict(in).t_store, 1e-12);
}

TEST(Calibrate, RatesAreBlockSizeIndependent) {
  const auto in = basic();
  const auto c = fit(observation_of(in));
  ASSERT_TRUE(c.valid);
  // Predicting the same data at double the block size halves nb and doubles
  // the per-block times: the stage totals are unchanged.
  const auto p2 = predict(calibrated_input(c, in.total_bytes, 2 * in.block_bytes,
                                           in.producers, in.consumers, false));
  const auto truth = predict(in);
  EXPECT_NEAR(p2.t_transfer, truth.t_transfer, 1e-12);
  EXPECT_NEAR(p2.t_analysis, truth.t_analysis, 1e-12);
}

TEST(Calibrate, RejectsEmptyObservations) {
  TraceObservation obs;
  const auto c = fit(obs);
  EXPECT_FALSE(c.valid);
  EXPECT_FALSE(c.note.empty());

  TraceObservation untraced;
  untraced.total_bytes = MiB;
  const auto c2 = fit(untraced);
  EXPECT_FALSE(c2.valid);
  EXPECT_NE(c2.note.find("traced"), std::string::npos);
  EXPECT_NE(summary(c2).find("invalid"), std::string::npos);
}

TEST(Schedule, NonIntegratedIsSumOfStages) {
  const double stages[4] = {1, 2, 3, 4};
  const auto s = schedule_non_integrated(7, stages);
  EXPECT_DOUBLE_EQ(makespan(s), 7 * (1 + 2 + 3 + 4));
  EXPECT_EQ(s.size(), 4u * 7u);
}

TEST(Schedule, IntegratedApproachesMaxStageBound) {
  // Fig 11: with pipelining, makespan -> blocks * max_stage + fill.
  const double stages[4] = {1, 1, 1, 1};
  const auto s = schedule_integrated(100, stages);
  EXPECT_DOUBLE_EQ(makespan(s), 100 + 3);  // nb * max + (stages-1) fill
  const auto n = schedule_non_integrated(100, stages);
  EXPECT_GT(makespan(n) / makespan(s), 3.5);
}

TEST(Schedule, IntegratedRespectsDependencies) {
  const double stages[4] = {2, 1, 3, 1};
  const auto s = schedule_integrated(10, stages);
  // Block b's stage k must start after block b's stage k-1 ends.
  double end_prev[10][4] = {};
  for (const auto& span : s) end_prev[span.block][span.stage] = span.t1;
  for (const auto& span : s) {
    if (span.stage > 0) {
      EXPECT_GE(span.t0, end_prev[span.block][span.stage - 1] - 1e-12);
    }
  }
}

TEST(Schedule, IntegratedStageUnitsNeverOverlap) {
  const double stages[4] = {2, 3, 1, 2};
  const auto s = schedule_integrated(20, stages);
  // Within one stage, spans must be disjoint (one functional unit per stage).
  for (int stage = 0; stage < 4; ++stage) {
    double last_end = -1;
    for (const auto& span : s) {
      if (span.stage != stage) continue;
      EXPECT_GE(span.t0, last_end - 1e-12);
      last_end = span.t1;
    }
  }
}

TEST(Schedule, SingleBlockDegeneratesToSum) {
  const double stages[4] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(makespan(schedule_integrated(1, stages)), 10.0);
  EXPECT_DOUBLE_EQ(makespan(schedule_non_integrated(1, stages)), 10.0);
}
